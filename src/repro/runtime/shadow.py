"""Sampled shadow execution: an online agreement estimator.

The offline tuner measures Δ-accuracy by re-running every batch at the
exact configuration — affordable once, unaffordable per request. The
serving layer instead re-runs every ``K``-th served batch through an
injected *oracle* (the exact fp64 path) and compares predictions. Stride
sampling keeps the estimator honest in a way random sampling would not:

* the sampled batches of the ``K`` possible offsets *partition* the
  served stream, so summing (matched, compared) over offsets reproduces
  the full-replay totals exactly — the estimator is unbiased over
  offsets by construction (``tests/test_shadow.py`` asserts the
  partition identity on small fleets);
* ``K = 1`` degenerates to full replay: the sampled agreement then
  *equals* the exhaustive agreement bit-for-bit, which is how the tests
  tie the online estimator back to the quant-gate numbers in
  ``BENCH_quant.json``.

The oracle is any callable from a token batch to predictions — the
tenancy layer installs the tenant's fp64 BASELINE executor (bit-identical
to the frozen :class:`~repro.core.reference.ReferenceExecutor`, per the
equivalence suite), while the tests also use a same-mode fp64 executor to
reproduce the quant gate's same-config agreement definition.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError


class ShadowSampler:
    """Stride-``K`` shadow replay over a stream of served batches.

    Args:
        oracle: Maps a token batch ``(B, T)`` to exact predictions (any
            shape; compared element-wise against the served predictions).
        every_k: Sampling stride — batch ``i`` is replayed when
            ``i % every_k == offset``. ``1`` replays everything.
        offset: Which residue class of the stride to sample.
    """

    def __init__(
        self,
        oracle: Callable[[np.ndarray], np.ndarray],
        every_k: int = 4,
        offset: int = 0,
    ) -> None:
        if every_k < 1:
            raise ConfigurationError(f"every_k must be >= 1, got {every_k}")
        if not 0 <= offset < every_k:
            raise ConfigurationError(
                f"offset must be in [0, {every_k}), got {offset}"
            )
        self.oracle = oracle
        self.every_k = every_k
        self.offset = offset
        self.batches_seen = 0
        self.batches_sampled = 0
        self.matched = 0
        self.compared = 0

    def observe(
        self, tokens: np.ndarray, predictions: np.ndarray
    ) -> float | None:
        """Account one served batch; replay it if the stride selects it.

        Returns the batch's agreement fraction when sampled, ``None``
        when the batch is skipped.
        """
        index = self.batches_seen
        self.batches_seen += 1
        if index % self.every_k != self.offset:
            return None
        self.batches_sampled += 1
        exact = np.asarray(self.oracle(tokens))
        predictions = np.asarray(predictions)
        if exact.shape != predictions.shape:
            raise ConfigurationError(
                f"oracle predictions shape {exact.shape} does not match "
                f"served predictions shape {predictions.shape}"
            )
        matches = exact == predictions
        self.matched += int(np.sum(matches))
        self.compared += int(matches.size)
        return float(np.mean(matches))

    @property
    def agreement(self) -> float | None:
        """Pooled agreement over every sampled prediction so far."""
        if self.compared == 0:
            return None
        return self.matched / self.compared

    def as_dict(self) -> dict:
        """Flat counters for bench reports."""
        return {
            "every_k": self.every_k,
            "offset": self.offset,
            "batches_seen": self.batches_seen,
            "batches_sampled": self.batches_sampled,
            "matched": self.matched,
            "compared": self.compared,
            "agreement": self.agreement,
        }
