"""Shared-memory weight arena: publish a network once, attach everywhere.

The paper's tissue insight is that the recurrent matrix ``U`` should be
loaded once and amortized across every fused cell. The serving runtime
lifts the same principle to process scale: the parent publishes every
parameter array of an :class:`~repro.nn.network.LSTMNetwork` into one
``multiprocessing.shared_memory`` segment, and each worker *attaches* —
mapping the same physical pages read-only — instead of receiving a
pickled copy per task. The segment is keyed by
:func:`~repro.core.plan.fingerprint_network`, so a manifest can never be
attached to the wrong weights.

Layout: one block, each array at a 64-byte-aligned offset (at least the
alignment numpy's own allocator guarantees, so attached views take the
same BLAS kernel paths as parent-owned arrays — a bit-identity
requirement, see ``tests/test_runtime.py``). The
:class:`ArenaManifest` carries only names, offsets, shapes, and dtypes —
it is small and travels through the spawn pickling of worker arguments.

Lifecycle: the publishing side owns the segment (``close()`` +
``unlink()``); attaching sides only ``close()``. Attached segments are
unregistered from Python's ``resource_tracker`` because the *owner* is
responsible for unlinking — otherwise every worker exit would tear the
segment down under the others (and spam leak warnings on 3.10–3.12).
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from repro.config import LSTMConfig
from repro.core.plan import fingerprint_network
from repro.errors import ArenaLayoutError, ConfigurationError, RuntimeStateError
from repro.nn.lstm_cell import LSTMCellWeights
from repro.nn.lstm_layer import LSTMLayer
from repro.nn.network import LSTMNetwork
from repro.nn.quantize import (
    Precision,
    QuantizedCell,
    QuantizedMatrix,
    quantize_network_layers,
)

#: Per-array alignment inside the segment (bytes).
_ALIGN = 64

#: Shared-memory name prefix; the CI smoke job greps ``/dev/shm`` for it.
ARENA_NAME_PREFIX = "repro-arena-"

#: The twelve per-gate arrays of one layer, in manifest order.
_CELL_FIELDS = (
    "w_f", "w_i", "w_c", "w_o",
    "u_f", "u_i", "u_c", "u_o",
    "b_f", "b_i", "b_c", "b_o",
)

#: The eight gate matrices a quantized publish stores as payloads.
_GATE_MATRIX_FIELDS = _CELL_FIELDS[:8]

#: The four bias vectors (always published float64).
_BIAS_FIELDS = _CELL_FIELDS[8:]


@dataclass(frozen=True)
class ArenaEntry:
    """Location of one parameter array inside the segment."""

    key: str
    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class ArenaManifest:
    """Everything a worker needs to rebuild the network from the segment.

    Small and picklable (no arrays) — the weights themselves travel only
    as shared pages.
    """

    shm_name: str
    fingerprint: str
    total_bytes: int
    config: LSTMConfig
    vocab_size: int
    num_classes: int
    per_timestep_head: bool
    head_pool: int
    #: Weight-storage policy of the published gate matrices (``fp64``,
    #: ``fp16``, or ``int8``). Quantized segments store per-gate payload
    #: entries (``layers.N.u_f.q``) plus, for int8, per-row scale vectors
    #: (``layers.N.u_f.scale``); biases/embedding/head stay float64.
    precision: str = "fp64"
    entries: tuple[ArenaEntry, ...] = field(default_factory=tuple)


def _network_arrays(network: LSTMNetwork) -> list[tuple[str, np.ndarray]]:
    """Flatten every parameter array to ``(key, array)`` in a fixed order."""
    arrays: list[tuple[str, np.ndarray]] = [("embedding", network.embedding)]
    for index, layer in enumerate(network.layers):
        for name in _CELL_FIELDS:
            arrays.append((f"layers.{index}.{name}", getattr(layer.weights, name)))
    arrays.append(("head_weight", network.head_weight))
    arrays.append(("head_bias", network.head_bias))
    return arrays


def _quantized_arrays(
    network: LSTMNetwork, cells: list[QuantizedCell]
) -> list[tuple[str, np.ndarray]]:
    """Flatten a quantized publish: payloads + scales instead of fp64 gates."""
    arrays: list[tuple[str, np.ndarray]] = [("embedding", network.embedding)]
    for index, (layer, cell) in enumerate(zip(network.layers, cells)):
        for name in _GATE_MATRIX_FIELDS:
            prefix, gate = name.split("_", 1)
            matrix = (cell.w if prefix == "w" else cell.u)[gate]
            arrays.append((f"layers.{index}.{name}.q", matrix.data))
            if matrix.scales is not None:
                arrays.append((f"layers.{index}.{name}.scale", matrix.scales))
        for name in _BIAS_FIELDS:
            arrays.append((f"layers.{index}.{name}", getattr(layer.weights, name)))
    arrays.append(("head_weight", network.head_weight))
    arrays.append(("head_bias", network.head_bias))
    return arrays


def _dequantized_network(
    network: LSTMNetwork, cells: list[QuantizedCell]
) -> LSTMNetwork:
    """The network a quantized arena actually serves (for fingerprinting).

    Embedding and head are shared; each layer's weights are the cell's
    dequantized float64 reconstruction. Because dequantized values differ
    between precisions, :func:`fingerprint_network` of this network keys
    the arena — and every downstream plan/program cache — per precision
    with no extra tag plumbing.
    """
    deq = LSTMNetwork.__new__(LSTMNetwork)
    deq.config = network.config
    deq.vocab_size = network.vocab_size
    deq.num_classes = network.num_classes
    deq.per_timestep_head = network.per_timestep_head
    deq.head_pool = network.head_pool
    deq.embedding = network.embedding
    deq.layers = [LSTMLayer(cell.dequantized) for cell in cells]
    deq.head_weight = network.head_weight
    deq.head_bias = network.head_bias
    return deq


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _entry_nbytes(entry: ArenaEntry) -> int:
    elems = 1
    for dim in entry.shape:
        elems *= int(dim)
    return elems * np.dtype(entry.dtype).itemsize


def validate_layout(manifest: ArenaManifest, segment_size: int) -> None:
    """Check a manifest's layout against the mapped segment.

    Mixed-dtype segments (int8 payloads interleaved with float64 scale
    vectors) make silent mis-striding easy: an off-by-one offset would
    still produce a *viewable* array, just over the wrong bytes. Every
    entry must therefore start on a :data:`_ALIGN`-byte boundary, stay
    inside the segment, and not overlap its neighbours — violations raise
    :class:`~repro.errors.ArenaLayoutError` before any view is built.
    """
    if manifest.total_bytes > segment_size:
        raise ArenaLayoutError(
            f"manifest claims {manifest.total_bytes} bytes but segment "
            f"{manifest.shm_name!r} maps only {segment_size}"
        )
    prev_key = None
    prev_end = 0
    for entry in sorted(manifest.entries, key=lambda e: e.offset):
        if entry.offset < 0 or entry.offset % _ALIGN != 0:
            raise ArenaLayoutError(
                f"entry {entry.key!r} starts at offset {entry.offset}, "
                f"which is not {_ALIGN}-byte aligned"
            )
        end = entry.offset + _entry_nbytes(entry)
        if end > manifest.total_bytes:
            raise ArenaLayoutError(
                f"entry {entry.key!r} ends at byte {end}, past the "
                f"segment's {manifest.total_bytes} bytes"
            )
        if entry.offset < prev_end:
            raise ArenaLayoutError(
                f"entry {entry.key!r} (offset {entry.offset}) overlaps "
                f"{prev_key!r} (which ends at byte {prev_end})"
            )
        prev_key = entry.key
        prev_end = end


class WeightArena:
    """One published (or attached) shared-memory weight segment.

    Use :meth:`publish` in the serving parent and :meth:`attach` in
    workers; both sides support the context-manager protocol. Only the
    publishing side unlinks.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, manifest: ArenaManifest, owner: bool
    ) -> None:
        # Both publish and attach funnel through here, so a corrupt or
        # mis-strided manifest is rejected before any view exists.
        validate_layout(manifest, shm.size)
        self._shm: shared_memory.SharedMemory | None = shm
        self.manifest = manifest
        self.owner = owner

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def publish(
        cls, network: LSTMNetwork, precision: "Precision | str" = "fp64"
    ) -> "WeightArena":
        """Copy every parameter of ``network`` into a fresh segment.

        Under a quantized ``precision``, the eight gate matrices of each
        layer are stored as their quantized payloads (int8 codes + fp64
        per-row scales, or fp16 values) — the segment itself shrinks by
        nearly the storage ratio, and workers rebuild byte-identical
        :class:`~repro.nn.quantize.QuantizedCell`\\ s from the shared
        pages via :meth:`quantized_cells`.
        """
        precision = Precision.parse(precision)
        if precision.is_quantized:
            cells = quantize_network_layers(network, precision)
            arrays = _quantized_arrays(network, cells)
            fingerprint = fingerprint_network(_dequantized_network(network, cells))
        else:
            arrays = _network_arrays(network)
            fingerprint = fingerprint_network(network)
        offsets: list[int] = []
        cursor = 0
        for _, array in arrays:
            cursor = _align(cursor)
            offsets.append(cursor)
            cursor += array.nbytes
        # The fingerprint keys the *weights*; the random suffix keeps two
        # simultaneous runtimes serving the same network from colliding.
        name = f"{ARENA_NAME_PREFIX}{fingerprint[:12]}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(cursor, 1))
        entries = []
        for (key, array), offset in zip(arrays, offsets):
            entries.append(
                ArenaEntry(
                    key=key,
                    offset=offset,
                    shape=tuple(array.shape),
                    dtype=str(array.dtype),
                )
            )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset)
            view[...] = array
        manifest = ArenaManifest(
            shm_name=shm.name,
            fingerprint=fingerprint,
            total_bytes=cursor,
            config=network.config,
            vocab_size=network.vocab_size,
            num_classes=network.num_classes,
            per_timestep_head=network.per_timestep_head,
            head_pool=network.head_pool,
            precision=precision.tag,
            entries=tuple(entries),
        )
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(cls, manifest: ArenaManifest) -> "WeightArena":
        """Map an already-published segment (read-only views)."""
        shm = shared_memory.SharedMemory(name=manifest.shm_name)
        # Attaching registered us with the resource tracker as if we owned
        # the segment; the publishing process owns it, so hand back the
        # claim (otherwise the first worker to exit unlinks it for all).
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return cls(shm, manifest, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent)."""
        if not self.owner:
            return
        try:
            shared_memory.SharedMemory(name=self.manifest.shm_name).unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "WeightArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self.owner:
            self.unlink()

    # -------------------------------------------------------------- access

    def _view(self, entry: ArenaEntry) -> np.ndarray:
        if self._shm is None:
            raise RuntimeStateError("weight arena is closed")
        view = np.ndarray(
            entry.shape,
            dtype=np.dtype(entry.dtype),
            buffer=self._shm.buf,
            offset=entry.offset,
        )
        view.setflags(write=False)
        return view

    def arrays(self) -> dict[str, np.ndarray]:
        """Read-only views of every published array, keyed by manifest key."""
        return {entry.key: self._view(entry) for entry in self.manifest.entries}

    def _gate_payload(
        self, views: dict[str, np.ndarray], index: int, name: str, copy: bool
    ) -> QuantizedMatrix:
        data = views[f"layers.{index}.{name}.q"]
        scales = views.get(f"layers.{index}.{name}.scale")
        if copy:
            data = np.array(data)
            scales = None if scales is None else np.array(scales)
        return QuantizedMatrix(data=data, scales=scales)

    def network(self) -> LSTMNetwork:
        """Rebuild the network on top of the shared pages.

        For an fp64 arena the parameter arrays are zero-copy read-only
        views into the segment; the network must not outlive this arena's
        mapping. For a quantized arena the gate matrices are dequantized
        into fresh float64 arrays (the payloads stay shared; only the
        reconstruction is materialized), so the rebuilt weights are
        byte-identical to what the publishing side dequantized.
        """
        views = self.arrays()
        manifest = self.manifest
        precision = Precision.parse(manifest.precision)
        network = LSTMNetwork.__new__(LSTMNetwork)
        network.config = manifest.config
        network.vocab_size = manifest.vocab_size
        network.num_classes = manifest.num_classes
        network.per_timestep_head = manifest.per_timestep_head
        network.head_pool = manifest.head_pool
        network.embedding = views["embedding"]
        network.layers = []
        for index in range(manifest.config.num_layers):
            if precision.is_quantized:
                fields = {
                    name: self._gate_payload(views, index, name, copy=False).dequantize()
                    for name in _GATE_MATRIX_FIELDS
                }
                for name in _BIAS_FIELDS:
                    fields[name] = views[f"layers.{index}.{name}"]
            else:
                fields = {name: views[f"layers.{index}.{name}"] for name in _CELL_FIELDS}
            network.layers.append(LSTMLayer(LSTMCellWeights(**fields)))
        network.head_weight = views["head_weight"]
        network.head_bias = views["head_bias"]
        if fingerprint_network(network) != manifest.fingerprint:
            raise ConfigurationError(
                "attached weight arena does not match its manifest fingerprint"
            )
        return network

    def quantized_cells(self) -> list[QuantizedCell]:
        """Rebuild per-layer :class:`QuantizedCell`\\ s from the payloads.

        Workers hand these to :class:`~repro.core.executor.LSTMExecutor`
        so the fleet runs on the *published* codes and scales rather than
        re-quantizing — the executor's weights are then byte-identical to
        the parent's by construction. Payloads and biases are copied out
        of the segment (they are small at quantized storage), so the
        cells may outlive the arena mapping.
        """
        precision = Precision.parse(self.manifest.precision)
        if not precision.is_quantized:
            raise ConfigurationError(
                "arena was published at fp64; it holds no quantized payloads"
            )
        views = self.arrays()
        cells: list[QuantizedCell] = []
        for index in range(self.manifest.config.num_layers):
            qw: dict[str, QuantizedMatrix] = {}
            qu: dict[str, QuantizedMatrix] = {}
            kwargs: dict[str, np.ndarray] = {}
            for name in _GATE_MATRIX_FIELDS:
                prefix, gate = name.split("_", 1)
                matrix = self._gate_payload(views, index, name, copy=True)
                (qw if prefix == "w" else qu)[gate] = matrix
                kwargs[name] = matrix.dequantize()
            for name in _BIAS_FIELDS:
                kwargs[name] = np.array(views[f"layers.{index}.{name}"])
            cells.append(
                QuantizedCell(
                    precision=precision,
                    dequantized=LSTMCellWeights(**kwargs),
                    w=qw,
                    u=qu,
                )
            )
        return cells


@dataclass
class ArenaRegistryStats:
    """Dedup accounting of an :class:`ArenaRegistry`.

    ``naive_bytes`` is what per-tenant publishing would have copied (every
    acquire pays its arena's full size); ``published_bytes`` is what the
    registry actually holds. Their ratio is the multi-tenant memory gate.
    """

    acquires: int = 0
    dedup_hits: int = 0
    published_segments: int = 0
    published_bytes: int = 0
    naive_bytes: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Published bytes over naive per-acquire bytes (1.0 = no sharing)."""
        if self.naive_bytes <= 0:
            return 1.0
        return self.published_bytes / self.naive_bytes

    def as_dict(self) -> dict[str, float]:
        """Flat form for bench reports."""
        return {
            "acquires": self.acquires,
            "dedup_hits": self.dedup_hits,
            "published_segments": self.published_segments,
            "published_bytes": self.published_bytes,
            "naive_bytes": self.naive_bytes,
            "dedup_ratio": self.dedup_ratio,
        }


class _RegistryVariant:
    """One refcounted published arena (a precision variant of one network)."""

    __slots__ = ("arena", "refcount")

    def __init__(self, arena: WeightArena) -> None:
        self.arena = arena
        self.refcount = 0


class ArenaRegistry:
    """Deduplicating, refcounted pool of published weight arenas.

    Entries are keyed by the *source* network's
    :func:`~repro.core.plan.fingerprint_network` — the fp64 fingerprint —
    with precision variants nested under it. Re-publishing a
    precision sibling (the same network at int8 after fp64, or a second
    int8 tenant of an already-served model) therefore reuses the existing
    fingerprint entry instead of publishing a second segment: an fp64 and
    an int8 publish of one network share one key path, and only a *new*
    (fingerprint, precision) variant copies bytes. Each variant's
    manifest keeps the dequantized-network fingerprint, so downstream
    plan/program caches stay keyed per precision exactly as before.

    :meth:`acquire` bumps a per-variant refcount; :meth:`release` drops
    it and unlinks the segment at zero. The registry is a context
    manager — exiting tears down every variant it still holds.

    Thread-safe: a reentrant lock serializes acquire/release/close, so
    tenants admitted from concurrent threads (or zoo executors running
    under the in-process dispatcher) can share one registry — two racing
    first-acquires publish exactly one segment, and refcounts stay exact.
    Publishing happens under the lock; it is rare (once per variant) and
    holding the lock closes the check-then-publish race window.
    """

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, _RegistryVariant]] = {}
        self._lock = threading.RLock()
        self.stats = ArenaRegistryStats()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(variants) for variants in self._entries.values())

    def acquire(
        self, network: LSTMNetwork, precision: "Precision | str" = "fp64"
    ) -> WeightArena:
        """Return the shared arena for ``(network, precision)``, publishing once.

        The first acquire of a variant publishes; every later acquire of
        the same source fingerprint and precision attaches to the same
        segment and only bumps the refcount.
        """
        precision = Precision.parse(precision)
        source_fp = fingerprint_network(network)
        with self._lock:
            variants = self._entries.setdefault(source_fp, {})
            variant = variants.get(precision.tag)
            self.stats.acquires += 1
            if variant is None:
                variant = _RegistryVariant(WeightArena.publish(network, precision))
                variants[precision.tag] = variant
                self.stats.published_segments += 1
                self.stats.published_bytes += variant.arena.manifest.total_bytes
            else:
                self.stats.dedup_hits += 1
            self.stats.naive_bytes += variant.arena.manifest.total_bytes
            variant.refcount += 1
            return variant.arena

    def release(self, arena: WeightArena) -> None:
        """Drop one reference; unlink the segment when the last one goes."""
        with self._lock:
            for source_fp, variants in self._entries.items():
                for tag, variant in variants.items():
                    if variant.arena is not arena:
                        continue
                    variant.refcount -= 1
                    if variant.refcount <= 0:
                        self.stats.published_bytes -= arena.manifest.total_bytes
                        self.stats.published_segments -= 1
                        arena.close()
                        arena.unlink()
                        del variants[tag]
                        if not variants:
                            del self._entries[source_fp]
                    return
            raise RuntimeStateError("arena was not acquired from this registry")

    def variants(self, network: LSTMNetwork) -> tuple[str, ...]:
        """Precision tags currently published under ``network``'s fingerprint."""
        with self._lock:
            return tuple(sorted(self._entries.get(fingerprint_network(network), ())))

    def close(self) -> None:
        """Unlink every segment still held (idempotent)."""
        with self._lock:
            for variants in self._entries.values():
                for variant in variants.values():
                    variant.arena.close()
                    variant.arena.unlink()
            self._entries.clear()

    def __enter__(self) -> "ArenaRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def leaked_segments(shm_dir: str = "/dev/shm") -> list[str]:
    """Names of repro arena segments still present on this host.

    Used by the tests and the CI smoke job to assert clean teardown; on
    platforms without a ``/dev/shm`` the check degrades to "none found".
    """
    root = Path(shm_dir)
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.glob(f"{ARENA_NAME_PREFIX}*"))
