"""Shared-memory weight arena: publish a network once, attach everywhere.

The paper's tissue insight is that the recurrent matrix ``U`` should be
loaded once and amortized across every fused cell. The serving runtime
lifts the same principle to process scale: the parent publishes every
parameter array of an :class:`~repro.nn.network.LSTMNetwork` into one
``multiprocessing.shared_memory`` segment, and each worker *attaches* —
mapping the same physical pages read-only — instead of receiving a
pickled copy per task. The segment is keyed by
:func:`~repro.core.plan.fingerprint_network`, so a manifest can never be
attached to the wrong weights.

Layout: one block, each array at a 64-byte-aligned offset (at least the
alignment numpy's own allocator guarantees, so attached views take the
same BLAS kernel paths as parent-owned arrays — a bit-identity
requirement, see ``tests/test_runtime.py``). The
:class:`ArenaManifest` carries only names, offsets, shapes, and dtypes —
it is small and travels through the spawn pickling of worker arguments.

Lifecycle: the publishing side owns the segment (``close()`` +
``unlink()``); attaching sides only ``close()``. Attached segments are
unregistered from Python's ``resource_tracker`` because the *owner* is
responsible for unlinking — otherwise every worker exit would tear the
segment down under the others (and spam leak warnings on 3.10–3.12).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from repro.config import LSTMConfig
from repro.core.plan import fingerprint_network
from repro.errors import ConfigurationError, RuntimeStateError
from repro.nn.lstm_cell import LSTMCellWeights
from repro.nn.lstm_layer import LSTMLayer
from repro.nn.network import LSTMNetwork

#: Per-array alignment inside the segment (bytes).
_ALIGN = 64

#: Shared-memory name prefix; the CI smoke job greps ``/dev/shm`` for it.
ARENA_NAME_PREFIX = "repro-arena-"

#: The twelve per-gate arrays of one layer, in manifest order.
_CELL_FIELDS = (
    "w_f", "w_i", "w_c", "w_o",
    "u_f", "u_i", "u_c", "u_o",
    "b_f", "b_i", "b_c", "b_o",
)


@dataclass(frozen=True)
class ArenaEntry:
    """Location of one parameter array inside the segment."""

    key: str
    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class ArenaManifest:
    """Everything a worker needs to rebuild the network from the segment.

    Small and picklable (no arrays) — the weights themselves travel only
    as shared pages.
    """

    shm_name: str
    fingerprint: str
    total_bytes: int
    config: LSTMConfig
    vocab_size: int
    num_classes: int
    per_timestep_head: bool
    head_pool: int
    entries: tuple[ArenaEntry, ...] = field(default_factory=tuple)


def _network_arrays(network: LSTMNetwork) -> list[tuple[str, np.ndarray]]:
    """Flatten every parameter array to ``(key, array)`` in a fixed order."""
    arrays: list[tuple[str, np.ndarray]] = [("embedding", network.embedding)]
    for index, layer in enumerate(network.layers):
        for name in _CELL_FIELDS:
            arrays.append((f"layers.{index}.{name}", getattr(layer.weights, name)))
    arrays.append(("head_weight", network.head_weight))
    arrays.append(("head_bias", network.head_bias))
    return arrays


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class WeightArena:
    """One published (or attached) shared-memory weight segment.

    Use :meth:`publish` in the serving parent and :meth:`attach` in
    workers; both sides support the context-manager protocol. Only the
    publishing side unlinks.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, manifest: ArenaManifest, owner: bool
    ) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self.manifest = manifest
        self.owner = owner

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def publish(cls, network: LSTMNetwork) -> "WeightArena":
        """Copy every parameter of ``network`` into a fresh segment."""
        arrays = _network_arrays(network)
        offsets: list[int] = []
        cursor = 0
        for _, array in arrays:
            cursor = _align(cursor)
            offsets.append(cursor)
            cursor += array.nbytes
        fingerprint = fingerprint_network(network)
        # The fingerprint keys the *weights*; the random suffix keeps two
        # simultaneous runtimes serving the same network from colliding.
        name = f"{ARENA_NAME_PREFIX}{fingerprint[:12]}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(cursor, 1))
        entries = []
        for (key, array), offset in zip(arrays, offsets):
            entries.append(
                ArenaEntry(
                    key=key,
                    offset=offset,
                    shape=tuple(array.shape),
                    dtype=str(array.dtype),
                )
            )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset)
            view[...] = array
        manifest = ArenaManifest(
            shm_name=shm.name,
            fingerprint=fingerprint,
            total_bytes=cursor,
            config=network.config,
            vocab_size=network.vocab_size,
            num_classes=network.num_classes,
            per_timestep_head=network.per_timestep_head,
            head_pool=network.head_pool,
            entries=tuple(entries),
        )
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(cls, manifest: ArenaManifest) -> "WeightArena":
        """Map an already-published segment (read-only views)."""
        shm = shared_memory.SharedMemory(name=manifest.shm_name)
        # Attaching registered us with the resource tracker as if we owned
        # the segment; the publishing process owns it, so hand back the
        # claim (otherwise the first worker to exit unlinks it for all).
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return cls(shm, manifest, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent)."""
        if not self.owner:
            return
        try:
            shared_memory.SharedMemory(name=self.manifest.shm_name).unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "WeightArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self.owner:
            self.unlink()

    # -------------------------------------------------------------- access

    def _view(self, entry: ArenaEntry) -> np.ndarray:
        if self._shm is None:
            raise RuntimeStateError("weight arena is closed")
        view = np.ndarray(
            entry.shape,
            dtype=np.dtype(entry.dtype),
            buffer=self._shm.buf,
            offset=entry.offset,
        )
        view.setflags(write=False)
        return view

    def arrays(self) -> dict[str, np.ndarray]:
        """Read-only views of every published array, keyed by manifest key."""
        return {entry.key: self._view(entry) for entry in self.manifest.entries}

    def network(self) -> LSTMNetwork:
        """Rebuild the network on top of the shared pages (no copies).

        The returned network's parameter arrays are read-only views into
        the segment; it must not outlive this arena's mapping.
        """
        views = self.arrays()
        manifest = self.manifest
        network = LSTMNetwork.__new__(LSTMNetwork)
        network.config = manifest.config
        network.vocab_size = manifest.vocab_size
        network.num_classes = manifest.num_classes
        network.per_timestep_head = manifest.per_timestep_head
        network.head_pool = manifest.head_pool
        network.embedding = views["embedding"]
        network.layers = []
        for index in range(manifest.config.num_layers):
            fields = {name: views[f"layers.{index}.{name}"] for name in _CELL_FIELDS}
            network.layers.append(LSTMLayer(LSTMCellWeights(**fields)))
        network.head_weight = views["head_weight"]
        network.head_bias = views["head_bias"]
        if fingerprint_network(network) != manifest.fingerprint:
            raise ConfigurationError(
                "attached weight arena does not match its manifest fingerprint"
            )
        return network


def leaked_segments(shm_dir: str = "/dev/shm") -> list[str]:
    """Names of repro arena segments still present on this host.

    Used by the tests and the CI smoke job to assert clean teardown; on
    platforms without a ``/dev/shm`` the check degrades to "none found".
    """
    root = Path(shm_dir)
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.glob(f"{ARENA_NAME_PREFIX}*"))
