"""Multi-tenant model-zoo serving: one arena, one cache, N tenants.

E-PUR's reuse-maximization argument — amortize every weight fetch across
as much work as possible — applied at the *zoo* level: when N tenants
serve models drawn from a shared zoo, the weights, compiled programs,
and execution plans are the reusable resources, and the serving layer's
job is to make sure no tenant pays for a copy another tenant already
owns. Three shared structures carry that:

* **one** :class:`~repro.runtime.arena.ArenaRegistry` — weight segments
  deduplicated by source-network fingerprint with precision variants
  nested under it, refcounted across tenants (two tenants of the same
  model attach the same pages; an int8 sibling reuses the fp64
  fingerprint entry);
* **one cross-tenant** :class:`~repro.core.program.ProgramCache` **and**
  :class:`~repro.core.plan.PlanCache` — their keys already carry weight
  fingerprints and shapes, so sharing is safe by construction, and a
  tenant's first batch after another tenant warmed the same model
  replays a compiled program instead of recompiling;
* **one QoS-weighted scheduler** — weighted deficit round-robin over
  per-tenant bounded FIFO queues: each backlogged tenant accrues
  ``weight x quantum`` deficit per visit and serves at most its deficit,
  so sustained service ratios converge to the configured weights while
  admission overload sheds per tenant with
  :class:`~repro.errors.BackpressureError` (one noisy tenant cannot
  starve or shed another).

On top rides the UO control loop: a tenant may carry a
:class:`~repro.runtime.controller.SLOController` observing its completed-
request latencies and a :class:`~repro.runtime.shadow.ShadowSampler`
agreement stream (every ``K``-th served batch replayed on the exact fp64
oracle), stepping (``alpha_inter``, ``alpha_intra``, ``precision``)
along the offline sweep frontier to hold the p99/accuracy SLO. Moving
to a new precision acquires the sibling arena through the registry —
deduplicated like any other publish — and rebuilds the executor against
the shared caches, so previously compiled programs stay warm.

**Equivalence discipline.** A tenant at the fp64 BASELINE point with no
controller is a strict no-op path: its logits are bit-identical to the
frozen :class:`~repro.core.reference.ReferenceExecutor`, regardless of
how the WDRR scheduler batches or interleaves it with other tenants
(batched fp64 execution is batch-composition invariant).

Observability: every tick emits one ``repro.obs/run/v1`` record labelled
with the serving tenant; :meth:`ZooServer.merged_record` folds a window
into one record whose cache counters are namespaced per tenant
(``tenantA/program_hits``) via :func:`~repro.obs.merge.merge_run_records`
— the per-tenant hit attribution that ``trace summarize``/``diff``
render. All time enters through ``now`` arguments and an optional
injected service model, so benches replay deterministic virtual-time
histories (:func:`run_zoo_open_loop`).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.plan import PlanCache
from repro.core.program import ProgramCache
from repro.errors import BackpressureError, ConfigurationError, ShapeError
from repro.nn.network import LSTMNetwork
from repro.obs.merge import merge_run_records
from repro.obs.record import RunRecord
from repro.obs.recorder import Recorder
from repro.runtime.arena import ArenaRegistry, WeightArena
from repro.runtime.controller import OperatingPoint, SLOController
from repro.runtime.loadgen import LoadReport, TenantArrival
from repro.runtime.shadow import ShadowSampler


@dataclass(frozen=True)
class TenantSpec:
    """Static description of one tenant.

    Attributes:
        name: Tenant identity (labels run records and cache attribution).
        model: Free-form model identity (zoo app name or a synthetic
            tag); informational — the *weights* are identified by
            fingerprint in the registry.
        weight: WDRR share. Sustained service ratios between saturated
            tenants converge to the ratio of their weights.
        point: Starting operating point (``alpha_inter``, ``alpha_intra``,
            ``precision``).
        max_batch: Largest batch served to this tenant in one tick.
        queue_limit: Bound on queued requests; admission past it sheds
            with :class:`~repro.errors.BackpressureError`.
        shadow_every: Shadow-sampling stride ``K`` (every K-th served
            batch replays on the exact oracle); ``0`` disables sampling.
    """

    name: str
    model: str = ""
    weight: float = 1.0
    point: OperatingPoint = field(default_factory=OperatingPoint)
    max_batch: int = 8
    queue_limit: int = 64
    shadow_every: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ConfigurationError(
                f"tenant weight must be positive, got {self.weight}"
            )
        if self.max_batch < 1 or self.queue_limit < 1:
            raise ConfigurationError("max_batch and queue_limit must be >= 1")
        if self.shadow_every < 0:
            raise ConfigurationError(
                f"shadow_every must be >= 0, got {self.shadow_every}"
            )


@dataclass
class ZooResult:
    """Resolved outcome of one whole-sequence request."""

    tenant: str
    session_id: str
    logits: np.ndarray
    prediction: np.ndarray
    submitted_at: float
    completed_at: float

    @property
    def latency_s(self) -> float:
        """Admission-to-completion latency."""
        return self.completed_at - self.submitted_at


class ZooTicket:
    """Pending handle for one submitted request."""

    __slots__ = ("tenant", "session_id", "submitted_at", "result")

    def __init__(self, tenant: str, session_id: str, submitted_at: float) -> None:
        self.tenant = tenant
        self.session_id = session_id
        self.submitted_at = submitted_at
        self.result: ZooResult | None = None

    @property
    def done(self) -> bool:
        """Whether the request has been served."""
        return self.result is not None


@dataclass
class _Request:
    """One queued whole-sequence request."""

    session_id: str
    tokens: np.ndarray  # 1-D
    enqueued_at: float
    ticket: ZooTicket


@dataclass
class TenantStats:
    """Per-tenant serving counters."""

    served_requests: int = 0
    served_tokens: int = 0
    shed_requests: int = 0
    ticks: int = 0

    def as_dict(self) -> dict[str, int]:
        """Flat form for bench reports."""
        return {
            "served_requests": self.served_requests,
            "served_tokens": self.served_tokens,
            "shed_requests": self.shed_requests,
            "ticks": self.ticks,
        }


class _Tenant:
    """Runtime state of one tenant."""

    def __init__(
        self,
        spec: TenantSpec,
        network: LSTMNetwork,
        controller: SLOController | None,
        shadow: ShadowSampler | None,
    ) -> None:
        self.spec = spec
        self.source_network = network  # fp64 weights; registry key source
        self.controller = controller
        self.shadow = shadow
        self.point = controller.point if controller is not None else spec.point
        self.queue: deque[_Request] = deque()
        self.deficit = 0.0
        self.stats = TenantStats()
        #: (arena, executor) per operating point — switching points keeps
        #: previously built executors (and their warm programs) alive.
        self.executors: dict[OperatingPoint, tuple[WeightArena, LSTMExecutor]] = {}


@dataclass
class ZooTickReport:
    """Outcome of one WDRR scheduler tick."""

    tenant: str | None  # None: no backlogged tenant could serve
    batch: int
    seq_length: int
    point: OperatingPoint | None = None
    exec_wall_s: float = 0.0
    service_s: float = 0.0
    end_s: float = 0.0
    queue_wait_s: float = 0.0
    completed: list[ZooResult] = field(default_factory=list)
    moved_to: OperatingPoint | None = None


class ZooServer:
    """WDRR multi-tenant server over shared arena/program/plan caches.

    Synchronous, deterministic engine in the style of
    :class:`~repro.runtime.streaming.StreamingServer`: :meth:`submit`
    admits whole-sequence requests per tenant, :meth:`tick` serves one
    tenant's batch under weighted deficit round-robin. All time enters
    through ``now`` and the optional per-tick ``service_model``.

    Args:
        registry: Shared weight-arena registry; owned (and torn down on
            :meth:`close`) when omitted.
        recorder: Optional recorder; each tick appends one run record
            labelled with the serving tenant.
        quantum: Deficit added per unit weight each time the scheduler
            visits a backlogged tenant. The default of 1.0 makes a
            weight-w tenant serve w sequences per round under
            saturation.
        mts: Maximum tissue size used when a tenant's operating point
            activates the inter level.
        clock: Time source when ``now`` arguments are omitted.
        threads: In-process work-unit parallelism for every tenant
            executor (``repro serve-zoo --threads``); ``1`` keeps the
            serial path.
    """

    def __init__(
        self,
        registry: ArenaRegistry | None = None,
        recorder: Recorder | None = None,
        quantum: float = 1.0,
        mts: int = 5,
        clock: Callable[[], float] = time.monotonic,
        threads: int = 1,
    ) -> None:
        if quantum <= 0:
            raise ConfigurationError(f"quantum must be positive, got {quantum}")
        if threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {threads}")
        self.registry = registry if registry is not None else ArenaRegistry()
        self._owns_registry = registry is None
        self.recorder = recorder
        self.quantum = quantum
        self.mts = mts
        self.clock = clock
        #: In-process dispatcher width stamped on every tenant executor
        #: (:attr:`repro.core.executor.ExecutionConfig.threads`): tenant
        #: batches shard across the shared pool while the single-flight
        #: plan/program caches keep cross-tenant compiles deduplicated.
        self.threads = threads
        self.program_cache = ProgramCache()
        self.plan_cache = PlanCache()
        self._tenants: dict[str, _Tenant] = {}
        self._ring: list[str] = []
        self._cursor = 0
        self.ticks = 0
        self._tick_records: list[RunRecord] = []

    # -------------------------------------------------------------- tenants

    def add_tenant(
        self,
        spec: TenantSpec,
        network: LSTMNetwork,
        controller: SLOController | None = None,
        shadow_oracle: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        """Register a tenant bound to ``network`` (fp64 source weights).

        The tenant's starting arena is acquired from the shared registry
        immediately — identical or precision-sibling models across
        tenants deduplicate here. When ``spec.shadow_every > 0`` and no
        ``shadow_oracle`` is given, the exact fp64 BASELINE executor over
        the source network becomes the oracle (bit-identical to the
        frozen reference). A ``controller`` closes the UO loop; without
        one the tenant's operating point is fixed for the window.
        """
        if spec.name in self._tenants:
            raise ConfigurationError(f"tenant {spec.name!r} already registered")
        if controller is not None and spec.shadow_every == 0:
            # The controller's agreement floor would otherwise never see a
            # sample and silently reduce to latency-only control.
            raise ConfigurationError(
                "a controlled tenant needs shadow_every >= 1 to observe agreement"
            )
        shadow = None
        if spec.shadow_every > 0:
            if shadow_oracle is None:
                oracle_exec = LSTMExecutor(
                    network,
                    ExecutionConfig(mode=ExecutionMode.BASELINE),
                    plan_cache=PlanCache(),
                )
                shadow_oracle = lambda tokens: oracle_exec.run_batch(  # noqa: E731
                    tokens
                ).predictions()
            shadow = ShadowSampler(shadow_oracle, every_k=spec.shadow_every)
        tenant = _Tenant(spec, network, controller, shadow)
        self._tenants[spec.name] = tenant
        self._ring.append(spec.name)
        self._executor_for(tenant, tenant.point)  # acquire the starting arena

    def tenant_names(self) -> list[str]:
        """Registered tenants in ring order."""
        return list(self._ring)

    def tenant_stats(self, name: str) -> TenantStats:
        """Serving counters of one tenant."""
        return self._require(name).stats

    def tenant_point(self, name: str) -> OperatingPoint:
        """The operating point a tenant currently serves at."""
        return self._require(name).point

    def tenant_controller(self, name: str) -> SLOController | None:
        """The tenant's controller, if it has one."""
        return self._require(name).controller

    def tenant_shadow(self, name: str) -> ShadowSampler | None:
        """The tenant's shadow sampler, if sampling is enabled."""
        return self._require(name).shadow

    def _require(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise ConfigurationError(f"unknown tenant {name!r}")
        return tenant

    # ------------------------------------------------------------ executors

    def _point_config(self, point: OperatingPoint) -> ExecutionConfig:
        """Resolve an operating point to an execution configuration."""
        inter = point.alpha_inter > 0.0
        intra = point.alpha_intra > 0.0
        if inter and intra:
            mode = ExecutionMode.COMBINED
        elif inter:
            mode = ExecutionMode.INTER
        elif intra:
            mode = ExecutionMode.INTRA
        else:
            mode = ExecutionMode.BASELINE
        kwargs: dict = {
            "mode": mode,
            "precision": point.precision,
            "threads": self.threads,
        }
        if inter:
            kwargs["alpha_inter"] = point.alpha_inter
            kwargs["mts"] = self.mts
        if intra:
            kwargs["alpha_intra"] = point.alpha_intra
        return ExecutionConfig(**kwargs)

    def _executor_for(
        self, tenant: _Tenant, point: OperatingPoint
    ) -> LSTMExecutor:
        """The tenant's executor at ``point``, building (and deduplicating
        the arena acquire) on first use."""
        cached = tenant.executors.get(point)
        if cached is not None:
            return cached[1]
        config = self._point_config(point)
        arena = self.registry.acquire(tenant.source_network, config.precision)
        network = arena.network()
        quantized_cells = (
            arena.quantized_cells() if config.precision.is_quantized else None
        )
        executor = LSTMExecutor(
            network,
            config,
            plan_cache=self.plan_cache,
            program_cache=self.program_cache,
            quantized_cells=quantized_cells,
        )
        tenant.executors[point] = (arena, executor)
        return executor

    # ------------------------------------------------------------ admission

    def submit(
        self,
        tenant_name: str,
        session_id: str,
        tokens: np.ndarray,
        now: float | None = None,
    ) -> ZooTicket:
        """Admit one whole-sequence request for a tenant.

        Raises:
            BackpressureError: The tenant's bounded queue is full. Only
                that tenant sheds — its neighbours' queues are untouched.
        """
        if now is None:
            now = self.clock()
        tenant = self._require(tenant_name)
        tokens = np.asarray(tokens)
        if tokens.ndim != 1 or tokens.shape[0] == 0:
            raise ShapeError(
                f"tokens must be a non-empty 1-D array, got shape {tokens.shape}"
            )
        if len(tenant.queue) >= tenant.spec.queue_limit:
            tenant.stats.shed_requests += 1
            raise BackpressureError(
                f"tenant {tenant_name!r} queue full "
                f"({len(tenant.queue)}/{tenant.spec.queue_limit}); retry later"
            )
        ticket = ZooTicket(tenant_name, session_id, now)
        tenant.queue.append(
            _Request(
                session_id=session_id,
                tokens=tokens,
                enqueued_at=now,
                ticket=ticket,
            )
        )
        return ticket

    @property
    def queue_depth(self) -> int:
        """Requests queued across every tenant."""
        return sum(len(t.queue) for t in self._tenants.values())

    def tenant_queue_depth(self, name: str) -> int:
        """Requests queued for one tenant."""
        return len(self._require(name).queue)

    # ----------------------------------------------------------- scheduling

    def _pick_tenant(self) -> tuple[_Tenant, int] | None:
        """WDRR visit: next backlogged tenant whose deficit affords >= 1.

        Visits each ring position at most once starting at the cursor.
        A visited empty tenant resets its deficit (classic DRR — credit
        must not accrue while idle); a backlogged tenant accrues
        ``weight x quantum`` and serves when its deficit covers at least
        one sequence. Returns ``(tenant, budget)`` or ``None`` when no
        tenant can serve this tick (deficits were still credited, so a
        light-weight tenant eventually accumulates service).
        """
        n = len(self._ring)
        for step in range(n):
            position = (self._cursor + step) % n
            tenant = self._tenants[self._ring[position]]
            if not tenant.queue:
                tenant.deficit = 0.0
                continue
            tenant.deficit += tenant.spec.weight * self.quantum
            budget = int(tenant.deficit)
            if budget >= 1:
                self._cursor = (position + 1) % n
                return tenant, budget
        return None

    def tick(
        self,
        now: float | None = None,
        service_model: Callable[["ZooTickReport"], float] | None = None,
    ) -> ZooTickReport:
        """Serve one tenant's batch under weighted deficit round-robin.

        Picks the next eligible tenant, gathers up to
        ``min(deficit, max_batch)`` FIFO requests of equal sequence
        length (the head request sets the length; later equal-length
        requests may jump shorter-queue positions, but order within a
        length class is preserved), runs one batched step at the
        tenant's current operating point, resolves tickets, feeds the
        tenant's shadow sampler and controller, and applies any
        controller move.

        ``service_model`` maps the partially filled report (tenant,
        batch, operating point, measured ``exec_wall_s``) to the tick's
        modeled service seconds — the virtual-time benches use it to
        make latency gates runner-independent. Without it the measured
        wall time is the cost. Completion times (``end_s``) include the
        service cost, so controller-observed latencies match what an
        open-loop report measures.
        """
        if now is None:
            now = self.clock()
        self.ticks += 1
        picked = self._pick_tenant()
        if picked is None:
            return ZooTickReport(tenant=None, batch=0, seq_length=0, end_s=now)
        tenant, budget = picked
        spec = tenant.spec

        length = int(tenant.queue[0].tokens.shape[0])
        limit = min(budget, spec.max_batch)
        requests: list[_Request] = []
        for request in tenant.queue:
            if int(request.tokens.shape[0]) == length:
                requests.append(request)
                if len(requests) == limit:
                    break
        picked_ids = set(map(id, requests))
        tenant.queue = deque(r for r in tenant.queue if id(r) not in picked_ids)
        tenant.deficit -= len(requests)
        if not tenant.queue:
            tenant.deficit = 0.0

        executor = self._executor_for(tenant, tenant.point)
        record = self.recorder is not None and self.recorder.enabled
        plan_before = self.plan_cache.stats.as_dict() if record else None
        program_before = self.program_cache.stats.as_dict() if record else None
        tokens = np.stack([r.tokens for r in requests])
        exec_start = time.perf_counter()
        result = executor.run_batch(tokens)
        exec_wall = time.perf_counter() - exec_start
        predictions = result.predictions()

        report = ZooTickReport(
            tenant=spec.name,
            batch=len(requests),
            seq_length=length,
            point=tenant.point,
            exec_wall_s=exec_wall,
        )
        report.service_s = (
            service_model(report) if service_model is not None else exec_wall
        )
        report.end_s = now + report.service_s
        for j, request in enumerate(requests):
            report.queue_wait_s += now - request.enqueued_at
            zoo_result = ZooResult(
                tenant=spec.name,
                session_id=request.session_id,
                logits=result.logits[j],
                prediction=predictions[j],
                submitted_at=request.ticket.submitted_at,
                completed_at=report.end_s,
            )
            request.ticket.result = zoo_result
            report.completed.append(zoo_result)

        tenant.stats.ticks += 1
        tenant.stats.served_requests += len(requests)
        tenant.stats.served_tokens += len(requests) * length

        if tenant.shadow is not None:
            sample = tenant.shadow.observe(tokens, predictions)
            if sample is not None and tenant.controller is not None:
                # Feed the pooled estimate, not the single-batch fraction:
                # one mismatch in a small batch reads as e.g. 0.875 and
                # would flap the controller, while the pooled stream
                # moves only as fast as the evidence accumulates.
                tenant.controller.observe_agreement(tenant.shadow.agreement)
        if tenant.controller is not None:
            for zoo_result in report.completed:
                tenant.controller.observe_latency(zoo_result.latency_s)
            moved = tenant.controller.decide()
            if moved is not None:
                tenant.point = moved
                report.moved_to = moved
        if record:
            self._record_tick(tenant, report, plan_before, program_before)
        return report

    def drain(
        self,
        now: float | None = None,
        service_model: Callable[["ZooTickReport"], float] | None = None,
    ) -> list[ZooTickReport]:
        """Tick until every tenant queue is empty; returns the reports."""
        reports = []
        while self.queue_depth > 0:
            reports.append(self.tick(now=now, service_model=service_model))
        return reports

    # -------------------------------------------------------------- records

    def _record_tick(
        self,
        tenant: _Tenant,
        report: ZooTickReport,
        plan_before: dict | None,
        program_before: dict | None,
    ) -> None:
        config = self._point_config(report.point)  # the point the tick served at
        builder = self.recorder.start_run(
            label=tenant.spec.name,
            mode=config.mode.value,
            spec=config.spec.name,
            batch=report.batch,
            seq_length=report.seq_length,
            config={
                "tenant": tenant.spec.name,
                "model": tenant.spec.model,
                "weight": tenant.spec.weight,
                "alpha_inter": config.alpha_inter,
                "alpha_intra": config.alpha_intra,
                "mts": config.mts,
                "precision": config.precision.tag,
                "backend": "numpy",
            },
        )
        if builder is None:
            return
        if plan_before is not None:
            builder.observe_cache_delta(plan_before, self.plan_cache.stats.as_dict())
        if program_before is not None:
            builder.observe_program_cache_delta(
                program_before, self.program_cache.stats.as_dict()
            )
        builder.set_timing(
            wall_s=report.exec_wall_s,
            exec_wall_s=report.exec_wall_s,
            queue_wait_s=report.queue_wait_s,
            ticks=1.0,
        )
        self._tick_records.append(builder.finish())

    def merged_record(self, label: str = "zoo") -> RunRecord | None:
        """One serving-window record with per-tenant cache attribution.

        Ticks of different tenants legitimately differ in sequence
        length *and* configuration (different models, alphas,
        precisions; a controller changes a tenant's config mid-window),
        so the merge tolerates both — agreeing config keys survive,
        disputed ones are listed under ``"varied"`` — and cache counters
        are namespaced per tenant (``tenantA/program_hits``). Returns
        ``None`` when no tick was recorded.
        """
        if not self._tick_records:
            return None
        return merge_run_records(
            self._tick_records,
            label=label,
            allow_varying_seq_length=True,
            allow_varying_config=True,
            group_cache_by_label=True,
        )

    def tick_records(self) -> list[RunRecord]:
        """The per-tick records recorded so far (one per serving tick)."""
        return list(self._tick_records)

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Release every tenant's arenas (and the registry, if owned)."""
        for tenant in self._tenants.values():
            for arena, _ in tenant.executors.values():
                if not self._owns_registry:
                    self.registry.release(arena)
            tenant.executors.clear()
        if self._owns_registry:
            self.registry.close()

    def __enter__(self) -> "ZooServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ------------------------------------------------------------------ open loop


@dataclass
class ZooLoadReport:
    """Outcome of one multi-tenant open-loop run."""

    per_tenant: dict[str, LoadReport] = field(default_factory=dict)
    #: Per-tenant ``(completion_time_s, latency_s)`` samples, in
    #: completion order — windowed tail analysis (the controller
    #: convergence gate) slices these by time.
    samples: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    duration_s: float = 0.0

    def overall(self) -> LoadReport:
        """All tenants folded into one report."""
        total = LoadReport()
        for report in self.per_tenant.values():
            total.offered_submissions += report.offered_submissions
            total.completed_submissions += report.completed_submissions
            total.shed_submissions += report.shed_submissions
            total.offered_tokens += report.offered_tokens
            total.completed_tokens += report.completed_tokens
            total.latencies_s.extend(report.latencies_s)
        total.duration_s = self.duration_s
        return total

    def as_dict(self) -> dict:
        """Nested flat summary for bench reports."""
        return {
            "duration_s": self.duration_s,
            "overall": self.overall().as_dict(),
            "per_tenant": {
                name: report.as_dict()
                for name, report in sorted(self.per_tenant.items())
            },
        }


def run_zoo_open_loop(
    server: ZooServer,
    arrivals: list[TenantArrival],
    tick_interval_s: float = 0.002,
    service_model: Callable[[ZooTickReport], float] | None = None,
) -> ZooLoadReport:
    """Drive a zoo server through a multi-tenant timeline on virtual time.

    The same queueing physics as :func:`~repro.runtime.loadgen.
    run_open_loop`: arrivals submit at their scheduled virtual times,
    ticks fire every ``tick_interval_s``, and each tick advances the
    clock by its (modeled) service cost, so overload grows queues and
    sheds deterministically. Latencies are admission to the end of the
    serving tick — the same numbers the tenants' controllers observe.
    """
    if tick_interval_s <= 0:
        raise ConfigurationError(
            f"tick_interval_s must be positive, got {tick_interval_s}"
        )
    report = ZooLoadReport()
    for name in server.tenant_names():
        report.per_tenant[name] = LoadReport()
        report.samples[name] = []
    now = 0.0
    next_tick = tick_interval_s
    idx = 0
    n = len(arrivals)
    while idx < n or server.queue_depth > 0:
        if idx < n and arrivals[idx].time_s <= next_tick:
            arrival = arrivals[idx]
            idx += 1
            now = max(now, arrival.time_s)
            tenant_report = report.per_tenant[arrival.tenant]
            tenant_report.offered_submissions += 1
            tenant_report.offered_tokens += int(arrival.tokens.shape[0])
            try:
                server.submit(
                    arrival.tenant, arrival.session_id, arrival.tokens, now=now
                )
            except BackpressureError:
                tenant_report.shed_submissions += 1
            continue
        now = max(now, next_tick)
        tick_report = server.tick(now=now, service_model=service_model)
        now = max(now, tick_report.end_s)
        for result in tick_report.completed:
            tenant_report = report.per_tenant[result.tenant]
            tenant_report.completed_submissions += 1
            tenant_report.completed_tokens += tick_report.seq_length
            tenant_report.latencies_s.append(result.latency_s)
            report.samples[result.tenant].append(
                (result.completed_at, result.latency_s)
            )
        next_tick = max(next_tick + tick_interval_s, now)
    report.duration_s = now
    return report
