"""Configuration registries for the reproduction.

This module captures the paper's two configuration tables:

* **Table I** — the Jetson TX1 platform specification lives in
  :mod:`repro.gpu.specs` (it is a GPU-model concern); this module only
  re-exports the names used by the benchmark harness.
* **Table II** — the six state-of-the-art NLP applications investigated in
  the study, each with its LSTM geometry (hidden size, layer count, unrolled
  length) and task family.

The :class:`LSTMConfig` dataclass is the single source of truth for model
geometry used by the network builders, the planner, and the GPU workload
generators.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class TaskFamily(enum.Enum):
    """Task families of the Table II applications."""

    SENTIMENT_CLASSIFICATION = "SC"
    QUESTION_ANSWERING = "QA"
    ENTAILMENT = "ET"
    LANGUAGE_MODELING = "LM"
    MACHINE_TRANSLATION = "MT"


@dataclass(frozen=True)
class LSTMConfig:
    """Geometry of one multi-layer LSTM network.

    Attributes:
        hidden_size: Width of every hidden layer (the paper's
            ``Hidden_Size``; the recurrent matrix ``U_{f,i,c,o}`` is
            ``4 * hidden_size x hidden_size``).
        num_layers: Number of stacked LSTM layers.
        seq_length: Number of unrolled cells per layer (the paper's
            ``Length``).
        input_size: Width of the layer-0 input vectors ``x_t``. Defaults to
            ``hidden_size``, matching the embedding widths used by the
            paper's applications.
        dtype_bytes: Bytes per weight/activation element (fp32 = 4).
    """

    hidden_size: int
    num_layers: int
    seq_length: int
    input_size: int | None = None
    dtype_bytes: int = 4

    def __post_init__(self) -> None:
        if self.hidden_size <= 0:
            raise ConfigurationError(f"hidden_size must be positive, got {self.hidden_size}")
        if self.num_layers <= 0:
            raise ConfigurationError(f"num_layers must be positive, got {self.num_layers}")
        if self.seq_length <= 0:
            raise ConfigurationError(f"seq_length must be positive, got {self.seq_length}")
        if self.input_size is not None and self.input_size <= 0:
            raise ConfigurationError(f"input_size must be positive, got {self.input_size}")
        if self.dtype_bytes not in (2, 4, 8):
            raise ConfigurationError(f"dtype_bytes must be 2, 4 or 8, got {self.dtype_bytes}")

    @property
    def effective_input_size(self) -> int:
        """Input width of the first layer (defaults to ``hidden_size``)."""
        return self.hidden_size if self.input_size is None else self.input_size

    def layer_input_size(self, layer_index: int) -> int:
        """Input width seen by ``layer_index`` (upper layers read ``h``)."""
        if not 0 <= layer_index < self.num_layers:
            raise ConfigurationError(
                f"layer_index {layer_index} out of range for {self.num_layers} layers"
            )
        return self.effective_input_size if layer_index == 0 else self.hidden_size

    @property
    def recurrent_weight_bytes(self) -> int:
        """Size in bytes of the united recurrent matrix ``U_{f,i,c,o}``."""
        return 4 * self.hidden_size * self.hidden_size * self.dtype_bytes

    def scaled(self, hidden_size: int | None = None, seq_length: int | None = None) -> "LSTMConfig":
        """Return a copy with a different model capacity (Fig. 17 sweeps)."""
        return dataclasses.replace(
            self,
            hidden_size=hidden_size if hidden_size is not None else self.hidden_size,
            seq_length=seq_length if seq_length is not None else self.seq_length,
            input_size=None,
        )


@dataclass(frozen=True)
class AppConfig:
    """One Table II application: name, task family, and LSTM geometry."""

    name: str
    family: TaskFamily
    model: LSTMConfig
    vocab_size: int
    num_classes: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.vocab_size <= 1:
            raise ConfigurationError(f"vocab_size must exceed 1, got {self.vocab_size}")
        if self.num_classes <= 1:
            raise ConfigurationError(f"num_classes must exceed 1, got {self.num_classes}")


def _table2() -> dict[str, AppConfig]:
    """Build the Table II registry.

    Hidden sizes, layer counts, and lengths are copied verbatim from the
    paper. Vocabulary / class counts are the standard values for each public
    dataset (they only size the embedding and output heads; the optimizations
    act on the recurrent weights).
    """
    return {
        "IMDB": AppConfig(
            name="IMDB",
            family=TaskFamily.SENTIMENT_CLASSIFICATION,
            model=LSTMConfig(hidden_size=512, num_layers=3, seq_length=80),
            vocab_size=10000,
            num_classes=2,
            description="Movie-review sentiment classification (positive/negative).",
        ),
        "MR": AppConfig(
            name="MR",
            family=TaskFamily.SENTIMENT_CLASSIFICATION,
            model=LSTMConfig(hidden_size=256, num_layers=1, seq_length=22),
            vocab_size=8000,
            num_classes=2,
            description="Short movie-review sentence polarity.",
        ),
        "BABI": AppConfig(
            name="BABI",
            family=TaskFamily.QUESTION_ANSWERING,
            model=LSTMConfig(hidden_size=256, num_layers=3, seq_length=86),
            vocab_size=160,
            num_classes=32,
            description="Toy question answering for text understanding.",
        ),
        "SNLI": AppConfig(
            name="SNLI",
            family=TaskFamily.ENTAILMENT,
            model=LSTMConfig(hidden_size=300, num_layers=2, seq_length=100),
            vocab_size=12000,
            num_classes=3,
            description="Natural-language inference (entailment/contradiction/neutral).",
        ),
        "PTB": AppConfig(
            name="PTB",
            family=TaskFamily.LANGUAGE_MODELING,
            model=LSTMConfig(hidden_size=650, num_layers=3, seq_length=200),
            vocab_size=10000,
            num_classes=10000,
            description="Word-level language modelling on the Penn Treebank.",
        ),
        "MT": AppConfig(
            name="MT",
            family=TaskFamily.MACHINE_TRANSLATION,
            model=LSTMConfig(hidden_size=500, num_layers=4, seq_length=50),
            vocab_size=15000,
            num_classes=15000,
            description="English-to-French translation (Tatoeba).",
        ),
    }


TABLE2_APPS: dict[str, AppConfig] = _table2()

APP_NAMES: tuple[str, ...] = tuple(TABLE2_APPS)


def get_app(name: str) -> AppConfig:
    """Look up a Table II application by (case-insensitive) name."""
    key = name.upper()
    if key not in TABLE2_APPS:
        raise ConfigurationError(
            f"unknown application {name!r}; known apps: {', '.join(TABLE2_APPS)}"
        )
    return TABLE2_APPS[key]


# The paper fixes the "user preferred accuracy" at 98 % (2 % loss is taken to
# be imperceptible) for the headline performance/energy evaluation.
USER_IMPERCEPTIBLE_ACCURACY: float = 0.98
