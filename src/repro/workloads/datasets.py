"""Synthetic evaluation datasets with confidence-selected teacher labels.

For each application we draw token sequences matching the Table II
geometry, label them with the *exact* network's predictions (the teacher),
and mark as *evaluation units* the decisions where the teacher is
confident:

* classification apps (SC / QA / ET): the per-sequence units above the
  confidence quantile are kept;
* per-timestep apps (LM / MT): all sequences are kept, but only the
  confident tokens enter the accuracy average.

The confidence cut mirrors trained-model behaviour — production NLP models
decide most inputs with large margins, so the paper's 2 %-loss budget is
measured on confident decisions, not on coin flips (see
:mod:`repro.workloads.metrics`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.executor import ExecutionMode
from repro.core.pipeline import OptimizedLSTM
from repro.errors import ConfigurationError
from repro.workloads.metrics import agreement_accuracy, prediction_margins

#: Fraction of decisions kept as evaluation units (the confident share).
DEFAULT_CONFIDENCE_KEEP: float = 0.6



#: Candidate-set size for the token-level agreement metric. With 10k-class
#: LM heads and a random teacher, top-1 logit gaps follow extreme-value
#: spacing (vanishingly small), whereas trained LMs are strongly peaked on
#: their confident tokens; scoring top-1-in-top-5 (the standard word-level
#: top-5 accuracy) restores the trained model's decisiveness.
TOKEN_TOPK: int = 5


@dataclass
class SyntheticDataset:
    """A labelled evaluation batch for one application.

    Attributes:
        tokens: Token ids, shape ``(N, T)``.
        teacher: Exact-network predictions — ``(N,)`` or ``(N, T)``.
        eval_mask: Boolean mask of confident evaluation units, same shape
            as ``teacher``.
        per_timestep: Whether the task is token-level (LM/MT).
        teacher_topk: For token-level tasks, the baseline's top-K candidate
            sets ``(N, T, K)``; accuracy then scores top-1-in-top-K.
    """

    tokens: np.ndarray
    teacher: np.ndarray
    eval_mask: np.ndarray
    per_timestep: bool
    teacher_topk: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.teacher.shape != self.eval_mask.shape:
            raise ConfigurationError("teacher and eval_mask shapes differ")
        if self.tokens.shape[0] != self.teacher.shape[0]:
            raise ConfigurationError("tokens and teacher batch sizes differ")
        if self.teacher_topk is not None and self.teacher_topk.shape[:-1] != self.teacher.shape:
            raise ConfigurationError("teacher_topk shape inconsistent with teacher")

    @property
    def num_sequences(self) -> int:
        """Number of sequences in the batch."""
        return int(self.tokens.shape[0])

    @property
    def num_eval_units(self) -> int:
        """Number of confident decisions entering the accuracy average."""
        return int(self.eval_mask.sum())

    def accuracy(self, predictions: np.ndarray) -> float:
        """Agreement of ``predictions`` with the teacher on the eval units.

        Token-level datasets score membership in the teacher's top-K
        candidate set; classification datasets score exact agreement.
        """
        if self.teacher_topk is None:
            return agreement_accuracy(self.teacher, predictions, self.eval_mask)
        predictions = np.asarray(predictions)
        if predictions.shape != self.teacher.shape:
            raise ConfigurationError("predictions shape mismatch")
        hits = (self.teacher_topk == predictions[..., None]).any(axis=-1)
        return float(hits[self.eval_mask].mean())


def build_dataset(
    app: OptimizedLSTM,
    num_sequences: int,
    seed: int = 0,
    confidence_keep: float = DEFAULT_CONFIDENCE_KEEP,
) -> SyntheticDataset:
    """Draw, label, and confidence-select an evaluation batch.

    Args:
        app: A (not necessarily calibrated) :class:`OptimizedLSTM`.
        num_sequences: Sequences in the final batch.
        seed: Sampling seed.
        confidence_keep: Fraction of decisions kept as evaluation units.
    """
    if not 0 < confidence_keep <= 1:
        raise ConfigurationError("confidence_keep must be in (0, 1]")
    per_timestep = app.network.per_timestep_head

    if per_timestep:
        tokens = app.sample_tokens(num_sequences, seed=seed)
        outcome = app.run(tokens, mode=ExecutionMode.BASELINE)
        logits = outcome.logits  # (N, T, C)
        k = min(TOKEN_TOPK, logits.shape[-1])
        topk = np.argpartition(logits, -k, axis=-1)[..., -k:]
        # Confidence = stability of the top-K membership: the gap between
        # the winner and the K-th candidate.
        part = np.partition(logits, -k, axis=-1)
        margins = part[..., -1] - part[..., -k]
        threshold = np.quantile(margins, 1.0 - confidence_keep)
        mask = margins >= threshold
        return SyntheticDataset(
            tokens=tokens,
            teacher=outcome.predictions,
            eval_mask=mask,
            per_timestep=True,
            teacher_topk=topk,
        )

    # Classification: rejection-sample confident sequences — keep the top
    # ``confidence_keep`` fraction of candidates by teacher margin.
    num_candidates = max(num_sequences + 1, int(np.ceil(num_sequences / confidence_keep)))
    candidates = app.sample_tokens(num_candidates, seed=seed)
    outcome = app.run(candidates, mode=ExecutionMode.BASELINE)
    margins = prediction_margins(outcome.logits)  # (N * k,)
    order = np.argsort(-margins)
    chosen = np.sort(order[:num_sequences])
    tokens = candidates[chosen]
    teacher = outcome.predictions[chosen]
    mask = np.ones(num_sequences, dtype=bool)
    return SyntheticDataset(
        tokens=tokens, teacher=teacher, eval_mask=mask, per_timestep=False
    )
