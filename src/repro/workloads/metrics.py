"""Accuracy metrics for the agreement methodology.

The paper reports the accuracy *loss* of each approximation against the
exact execution. With synthetic teachers, the equivalent measurement is
agreement: the fraction of evaluation units (sequences for classification,
tokens for LM/MT) where the approximated network predicts the same class
as the exact network.

Real trained models are *confident* on the overwhelming majority of their
inputs; a randomly-initialized teacher is not — many of its "decisions" are
coin flips that any infinitesimal perturbation overturns. Counting those
flips as accuracy loss would make the metric measure tie-breaking noise
rather than approximation damage, so datasets restrict evaluation to the
confidently-decided units (see :func:`repro.workloads.datasets.build_dataset`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def prediction_margins(logits: np.ndarray) -> np.ndarray:
    """Top-1 minus top-2 logit per decision — the confidence proxy.

    Args:
        logits: ``(..., C)`` raw scores.

    Returns:
        Margins of shape ``logits.shape[:-1]``.
    """
    logits = np.asarray(logits, dtype=np.float64)
    if logits.shape[-1] < 2:
        raise ConfigurationError("margins need at least two classes")
    top2 = np.partition(logits, -2, axis=-1)[..., -2:]
    return top2[..., 1] - top2[..., 0]


def agreement_accuracy(
    teacher: np.ndarray, predictions: np.ndarray, mask: np.ndarray | None = None
) -> float:
    """Fraction of (masked) units where ``predictions == teacher``."""
    teacher = np.asarray(teacher)
    predictions = np.asarray(predictions)
    if teacher.shape != predictions.shape:
        raise ConfigurationError(
            f"teacher shape {teacher.shape} != predictions shape {predictions.shape}"
        )
    matches = teacher == predictions
    if mask is None:
        return float(matches.mean())
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != teacher.shape:
        raise ConfigurationError(f"mask shape {mask.shape} != teacher shape {teacher.shape}")
    if not mask.any():
        raise ConfigurationError("evaluation mask selects no units")
    return float(matches[mask].mean())


def perplexity_proxy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Perplexity of per-timestep ``logits`` against target token ids.

    A secondary diagnostic for the LM/MT workloads: unlike top-1 agreement
    it is sensitive to the whole output distribution.
    """
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets)
    if logits.shape[:-1] != targets.shape:
        raise ConfigurationError(
            f"logits shape {logits.shape} incompatible with targets {targets.shape}"
        )
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    picked = np.take_along_axis(log_probs, targets[..., None], axis=-1)[..., 0]
    return float(np.exp(-picked.mean()))
