"""The six Table II NLP applications, their synthetic datasets, metrics,
and the user study.

The real datasets (IMDB, MR, bAbI, SNLI, PTB, Tatoeba) are unavailable
offline; the substitution (DESIGN.md §2) keeps what the optimizations
interact with — sequence geometry and trained-model gate statistics — and
replaces task labels with *teacher labels*: the exact network's own
predictions on confidently-decided inputs. Accuracy is then agreement with
the teacher, which measures exactly the paper's Δ-accuracy (the baseline
scores 100 % by construction, and every point lost is attributable to the
approximations).
"""

from repro.workloads.datasets import SyntheticDataset, build_dataset
from repro.workloads.metrics import agreement_accuracy, prediction_margins, perplexity_proxy
from repro.workloads.apps import Workload, WorkloadEvaluation, build_workload
from repro.workloads.userstudy import (
    Participant,
    ReplayProgram,
    SchemeExperience,
    UserStudy,
    sample_participants,
)

__all__ = [
    "Participant",
    "ReplayProgram",
    "SchemeExperience",
    "SyntheticDataset",
    "UserStudy",
    "Workload",
    "WorkloadEvaluation",
    "agreement_accuracy",
    "build_dataset",
    "build_workload",
    "perplexity_proxy",
    "prediction_margins",
    "sample_participants",
]
