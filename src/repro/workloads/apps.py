"""The six evaluated applications, wired end to end.

A :class:`Workload` bundles a calibrated :class:`~repro.core.pipeline.
OptimizedLSTM`, its confidence-labelled :class:`~repro.workloads.datasets.
SyntheticDataset`, and the baseline outcome, and exposes the measurements
the paper's figures are built from: per-scheme accuracy, speedup, and
energy saving, plus the full threshold sweep of Fig. 19.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import APP_NAMES, get_app
from repro.core.executor import ExecutionMode
from repro.core.pipeline import InferenceOutcome, OptimizedLSTM
from repro.core.plan import PlanCache
from repro.core.thresholds import select_ao, select_bpa
from repro.errors import ConfigurationError
from repro.gpu.specs import GPUSpec, TEGRA_X1
from repro.workloads.datasets import DEFAULT_CONFIDENCE_KEEP, SyntheticDataset, build_dataset

#: Evaluation batch sizes per application. Per-timestep apps (PTB, MT) get
#: fewer sequences because every token is an evaluation unit.
DEFAULT_EVAL_SEQUENCES: dict[str, int] = {
    "IMDB": 32,
    "MR": 96,
    "BABI": 64,
    "SNLI": 36,
    "PTB": 6,
    "MT": 12,
}

#: Confident-decision share per application. Many-class tasks keep a
#: smaller share: a random teacher's margins tighten as the class count
#: grows, whereas a trained model on separable data stays decisive — the
#: keep fraction restores that decisiveness (see workloads.metrics).
DEFAULT_CONFIDENCE_KEEP_PER_APP: dict[str, float] = {
    "IMDB": 0.70,
    "MR": 0.80,
    "BABI": 0.35,
    "SNLI": 0.85,
    "PTB": 0.35,
    "MT": 0.35,
}


@dataclass
class WorkloadEvaluation:
    """One scheme's measured (accuracy, speedup, energy) on one workload."""

    app_name: str
    mode: ExecutionMode
    threshold_index: int | None
    alpha_inter: float
    alpha_intra: float
    accuracy: float
    speedup: float
    energy_saving: float
    mean_tissue_size: float
    mean_skip_fraction: float
    mean_breakpoints: float
    mean_time: float
    mean_energy: float


class Workload:
    """A calibrated application plus its evaluation dataset."""

    def __init__(self, app: OptimizedLSTM, dataset: SyntheticDataset, name: str) -> None:
        if app.calibration is None:
            raise ConfigurationError("workload requires a calibrated OptimizedLSTM")
        self.app = app
        self.dataset = dataset
        self.name = name
        self._baseline: InferenceOutcome | None = None

    @property
    def baseline(self) -> InferenceOutcome:
        """The exact execution of the evaluation batch (cached)."""
        if self._baseline is None:
            self._baseline = self.app.run(
                self.dataset.tokens, mode=ExecutionMode.BASELINE
            )
        return self._baseline

    def _as_evaluation(
        self,
        outcome: InferenceOutcome,
        mode: ExecutionMode,
        threshold_index: int | None,
        alpha_inter: float,
        alpha_intra: float,
    ) -> WorkloadEvaluation:
        base = self.baseline
        return WorkloadEvaluation(
            app_name=self.name,
            mode=mode,
            threshold_index=threshold_index,
            alpha_inter=alpha_inter,
            alpha_intra=alpha_intra,
            accuracy=self.dataset.accuracy(outcome.predictions),
            speedup=outcome.speedup_vs(base),
            energy_saving=outcome.energy_saving_vs(base),
            mean_tissue_size=outcome.mean_tissue_size,
            mean_skip_fraction=outcome.mean_skip_fraction,
            mean_breakpoints=outcome.mean_breakpoints,
            mean_time=outcome.mean_time,
            mean_energy=outcome.mean_energy,
        )

    def evaluate(
        self,
        mode: ExecutionMode,
        threshold_index: int | None = None,
        alpha_inter: float | None = None,
        alpha_intra: float | None = None,
        drs_style: str = "hardware",
        zero_prune_fraction: float = 0.37,
    ) -> WorkloadEvaluation:
        """Measure one scheme on the evaluation batch.

        Threshold set 0 *is* the baseline case (the paper's convention for
        Fig. 19), so it is reported as exactly 1.0x / 100 %.
        """
        if mode is ExecutionMode.BASELINE or threshold_index == 0:
            base = self.baseline
            return self._as_evaluation(base, ExecutionMode.BASELINE, 0, 0.0, 0.0)
        outcome = self.app.run(
            self.dataset.tokens,
            mode=mode,
            threshold_index=threshold_index,
            alpha_inter=alpha_inter,
            alpha_intra=alpha_intra,
            drs_style=drs_style,
            zero_prune_fraction=zero_prune_fraction,
        )
        config = self.app.execution_config(
            mode,
            alpha_inter=alpha_inter,
            alpha_intra=alpha_intra,
            threshold_index=threshold_index,
            drs_style=drs_style,
            zero_prune_fraction=zero_prune_fraction,
        )
        return self._as_evaluation(
            outcome, mode, threshold_index, config.alpha_inter, config.alpha_intra
        )

    def threshold_sweep(
        self,
        mode: ExecutionMode = ExecutionMode.COMBINED,
        indices: range | list[int] | None = None,
        drs_style: str = "hardware",
    ) -> list[WorkloadEvaluation]:
        """The Fig. 19 sweep: one evaluation per threshold set."""
        if indices is None:
            indices = range(len(self.app.calibration.schedule()))
        return [
            self.evaluate(mode, threshold_index=i, drs_style=drs_style) for i in indices
        ]

    @staticmethod
    def ao_index(sweep: list[WorkloadEvaluation], target_accuracy: float = 0.98) -> int:
        """AO selection over a sweep (most aggressive set within budget)."""
        return select_ao(np.array([e.accuracy for e in sweep]), target_accuracy)

    @staticmethod
    def bpa_index(sweep: list[WorkloadEvaluation]) -> int:
        """BPA selection over a sweep (max speedup x accuracy)."""
        return select_bpa(
            np.array([e.accuracy for e in sweep]),
            np.array([e.speedup for e in sweep]),
        )


def build_workload(
    name: str,
    seed: int = 0,
    num_sequences: int | None = None,
    spec: GPUSpec = TEGRA_X1,
    calibration_sequences: int = 8,
    confidence_keep: float | None = None,
    mts: int | None = None,
    plan_cache: PlanCache | None = None,
) -> Workload:
    """Build, calibrate, and label one Table II application end to end."""
    app_config = get_app(name)
    app = OptimizedLSTM.from_app(app_config, seed=seed, spec=spec, plan_cache=plan_cache)
    app.calibrate(num_sequences=calibration_sequences, mts=mts)
    if num_sequences is None:
        num_sequences = DEFAULT_EVAL_SEQUENCES[app_config.name]
    if confidence_keep is None:
        confidence_keep = DEFAULT_CONFIDENCE_KEEP_PER_APP.get(
            app_config.name, DEFAULT_CONFIDENCE_KEEP
        )
    dataset = build_dataset(
        app, num_sequences, seed=seed + 1, confidence_keep=confidence_keep
    )
    return Workload(app, dataset, app_config.name)


def build_scaled_workload(
    name: str,
    hidden_size: int | None = None,
    seq_length: int | None = None,
    seed: int = 0,
    num_sequences: int | None = None,
    spec: GPUSpec = TEGRA_X1,
    calibration_sequences: int = 6,
    plan_cache: PlanCache | None = None,
) -> Workload:
    """A Table II application with altered model capacity (Fig. 17 sweeps).

    Keeps the application's task family, vocabulary, head, and calibration
    profile, but scales the hidden size and/or unrolled length.
    """
    import dataclasses

    from repro.core.pipeline import OptimizedLSTM as _OptimizedLSTM

    base = get_app(name)
    scaled = dataclasses.replace(
        base, model=base.model.scaled(hidden_size=hidden_size, seq_length=seq_length)
    )
    app = _OptimizedLSTM.from_app(scaled, seed=seed, spec=spec, plan_cache=plan_cache)
    app.calibrate(num_sequences=calibration_sequences)
    if num_sequences is None:
        num_sequences = max(12, DEFAULT_EVAL_SEQUENCES[base.name] // 2)
    keep = DEFAULT_CONFIDENCE_KEEP_PER_APP.get(base.name, DEFAULT_CONFIDENCE_KEEP)
    dataset = build_dataset(app, num_sequences, seed=seed + 1, confidence_keep=keep)
    label = f"{base.name}-H{scaled.model.hidden_size}-L{scaled.model.seq_length}"
    return Workload(app, dataset, label)


def all_app_names() -> tuple[str, ...]:
    """The Table II application names in paper order."""
    return APP_NAMES
