"""The user study (Section VI-E), with a simulated participant panel.

The paper recruits 30 participants, replays application outputs with the
delay and accuracy of four schemes (baseline, AO, BPA, UO), and collects
1-5 satisfaction scores. The phenomenon behind Fig. 18 is a utility
trade-off: users enjoy faster responses, dislike *perceptible* accuracy
loss, and differ in how they weigh the two — which is why the per-user
tuned UO scheme wins, the aggressive BPA scheme loses, and the
imperceptible-loss AO scheme beats the baseline.

The panel model encodes exactly that: each participant has a perception
threshold for accuracy loss (centred on the 2 % the paper calls
imperceptible), a speed preference, and an accuracy-loss aversion, all
drawn from seeded distributions. The replay program replays measured
(delay, accuracy) pairs from the benchmark harness, with per-replay jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.apps import WorkloadEvaluation

#: Paper's panel size.
DEFAULT_NUM_PARTICIPANTS: int = 30

#: Replays rated per scheme per participant (100 replays / 4 schemes).
DEFAULT_REPLAYS_PER_SCHEME: int = 25


@dataclass(frozen=True)
class SchemeExperience:
    """What a user experiences under one scheme: delay ratio and accuracy.

    ``delay_ratio`` is the response delay normalized to the baseline (1.0 =
    baseline speed, 0.4 = 2.5x faster).
    """

    name: str
    delay_ratio: float
    accuracy: float

    def __post_init__(self) -> None:
        if self.delay_ratio <= 0:
            raise ConfigurationError("delay_ratio must be positive")
        if not 0 <= self.accuracy <= 1:
            raise ConfigurationError("accuracy must be in [0, 1]")


@dataclass(frozen=True)
class Participant:
    """One simulated panel member.

    Attributes:
        speed_preference: Marginal satisfaction per unit of delay saved.
        loss_aversion: Marginal dissatisfaction per percentage point of
            *perceived* accuracy loss.
        perception_threshold: Accuracy loss below which the participant
            notices nothing (centred on the paper's 2 %).
        rating_noise: Std-dev of the per-replay rating jitter.
    """

    speed_preference: float
    loss_aversion: float
    perception_threshold: float
    rating_noise: float = 0.35

    def satisfaction(
        self, experience: SchemeExperience, rng: np.random.Generator
    ) -> int:
        """Rate one replay on the paper's 1-5 scale."""
        loss = 1.0 - experience.accuracy
        perceived = max(0.0, loss - self.perception_threshold)
        score = (
            3.0
            + self.speed_preference * (1.0 - experience.delay_ratio) * 2.0
            - self.loss_aversion * perceived * 100.0
            + rng.normal(0.0, self.rating_noise)
        )
        return int(np.clip(round(score), 1, 5))

    def expected_satisfaction(self, experience: SchemeExperience) -> float:
        """Noise-free utility, used for the UO per-user threshold choice."""
        loss = 1.0 - experience.accuracy
        perceived = max(0.0, loss - self.perception_threshold)
        return (
            3.0
            + self.speed_preference * (1.0 - experience.delay_ratio) * 2.0
            - self.loss_aversion * perceived * 100.0
        )


def sample_participants(
    count: int = DEFAULT_NUM_PARTICIPANTS, seed: int = 0
) -> list[Participant]:
    """Draw a heterogeneous panel (the paper's random campus recruits)."""
    if count < 1:
        raise ConfigurationError("need at least one participant")
    rng = np.random.default_rng(seed)
    participants = []
    for _ in range(count):
        participants.append(
            Participant(
                speed_preference=float(rng.uniform(0.4, 1.4)),
                loss_aversion=float(rng.uniform(0.04, 0.22)),
                perception_threshold=float(np.clip(rng.normal(0.02, 0.008), 0.002, 0.05)),
            )
        )
    return participants


class ReplayProgram:
    """Replays measured (delay, accuracy) pairs for each scheme.

    Built from a Fig. 19 threshold sweep: the baseline is set 0, AO and BPA
    are the paper's selections over the sweep, and UO offers every set so
    each participant's preferred point can be replayed.
    """

    def __init__(self, sweep: list[WorkloadEvaluation]) -> None:
        if len(sweep) < 2:
            raise ConfigurationError("a replay program needs a threshold sweep")
        self._sweep = sweep
        self._experiences = [
            SchemeExperience(
                name=f"set{i}",
                delay_ratio=1.0 / max(ev.speedup, 1e-9),
                accuracy=ev.accuracy,
            )
            for i, ev in enumerate(sweep)
        ]

    @property
    def experiences(self) -> list[SchemeExperience]:
        """Per-threshold-set experiences (index-aligned with the sweep)."""
        return list(self._experiences)

    def experience_for(self, index: int, name: str | None = None) -> SchemeExperience:
        """The experience of one threshold set, optionally renamed."""
        exp = self._experiences[index]
        if name is None:
            return exp
        return SchemeExperience(name=name, delay_ratio=exp.delay_ratio, accuracy=exp.accuracy)

    def uo_choice(self, participant: Participant) -> SchemeExperience:
        """UO scheme: the set maximizing this participant's utility."""
        best = max(self._experiences, key=participant.expected_satisfaction)
        return SchemeExperience(
            name="UO", delay_ratio=best.delay_ratio, accuracy=best.accuracy
        )


@dataclass
class StudyResult:
    """Mean satisfaction per scheme (Fig. 18)."""

    scores: dict[str, float]
    per_participant: dict[str, np.ndarray]


class UserStudy:
    """Runs the Fig. 18 protocol on a simulated panel."""

    def __init__(
        self,
        replay: ReplayProgram,
        participants: list[Participant] | None = None,
        replays_per_scheme: int = DEFAULT_REPLAYS_PER_SCHEME,
        seed: int = 7,
    ) -> None:
        self.replay = replay
        self.participants = participants or sample_participants(seed=seed)
        self.replays_per_scheme = replays_per_scheme
        self._rng = np.random.default_rng(seed)

    def run(self, ao_index: int, bpa_index: int) -> StudyResult:
        """Rate the four schemes: baseline, AO, BPA, and per-user UO."""
        fixed = {
            "baseline": self.replay.experience_for(0, "baseline"),
            "AO": self.replay.experience_for(ao_index, "AO"),
            "BPA": self.replay.experience_for(bpa_index, "BPA"),
        }
        per_participant: dict[str, list[float]] = {
            name: [] for name in (*fixed, "UO")
        }
        for participant in self.participants:
            experiences = dict(fixed)
            experiences["UO"] = self.replay.uo_choice(participant)
            for name, experience in experiences.items():
                ratings = [
                    participant.satisfaction(experience, self._rng)
                    for _ in range(self.replays_per_scheme)
                ]
                per_participant[name].append(float(np.mean(ratings)))
        scores = {name: float(np.mean(vals)) for name, vals in per_participant.items()}
        return StudyResult(
            scores=scores,
            per_participant={k: np.asarray(v) for k, v in per_participant.items()},
        )
