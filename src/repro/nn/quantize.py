"""Low-precision weight storage: symmetric per-row int8 and fp16 policies.

The paper's bandwidth model treats every streamed weight byte as the
enemy; tissues amortize re-loads of ``U`` and DRS skips trivial rows, but
both savings scale with the *size* of the stored rows. E-PUR and SHARP
show the other half of memory friendliness for RNN inference: linear
low-precision weight storage, which composes multiplicatively with row
skipping — a skipped int8 row was already 8x smaller than its fp64
master, so skip and quantization compound.

This module provides the :class:`Precision` policy object threaded
through :class:`~repro.nn.network.LSTMNetwork` →
:class:`~repro.core.executor.LSTMExecutor` → compiled programs, plus the
quantize/dequantize primitives:

* ``int8``: symmetric per-row quantization with a float64 scale per row,
  ``scale = max|row| / 127`` and ``q = clip(rint(x / scale), -127, 127)``.
  The per-element reconstruction error is bounded by ``scale / 2``
  (property-tested in ``tests/test_quantize.py``). All-zero rows store
  ``scale = 0`` and reconstruct exactly.
* ``fp16``: a round-trip through IEEE half precision — no scales, 2
  bytes per element, relative error bounded by ``2**-11`` in the normal
  range.
* ``fp64``: the identity policy. It performs **no** transformation, so
  an fp64-policy executor stays bit-identical to the frozen reference.

Only the recurrence weights ``W`` and ``U`` are quantized: they dominate
streamed bytes (Sec. II-B) and their rows are what DRS skips. Biases,
the embedding table, and the head stay float64.

Quantization happens once, at executor construction (mirroring how zero
pruning replaces weights before planning), so every downstream path —
relevance planning, compiled programs, the shared-memory arena, the
fleet — observes ordinary float64 weights whose *values* carry the
quantization. The retained :class:`QuantizedMatrix` payloads enable the
DRS-aware fused dequant in the compacted per-gate GEMM
(:meth:`QuantizedMatrix.dequantize_rows`): only surviving rows are
widened, so bytes moved shrink with both the precision and the skip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.gru import GRU_GATE_ORDER, GRUCellWeights
from repro.nn.lstm_cell import GATE_ORDER, LSTMCellWeights

#: Valid ``Precision.weights`` values, widest first.
PRECISIONS: tuple[str, ...] = ("fp64", "fp16", "int8")

#: Storage bytes per weight element for each policy (host arrays).
STORAGE_BYTES: dict[str, int] = {"fp64": 8, "fp16": 2, "int8": 1}

#: Symmetric int8 code range: codes live in [-127, 127] (no -128, so the
#: grid is symmetric and ``|deq - x| <= scale / 2`` holds at both ends).
INT8_LEVELS: int = 127


@dataclass(frozen=True)
class Precision:
    """Weight-storage precision policy (hashable, frozen).

    Attributes:
        weights: Storage format for the recurrence weights ``W``/``U``:
            ``"fp64"`` (identity — bit-exact), ``"fp16"``, or ``"int8"``
            (symmetric per-row with float64 scales).
    """

    weights: str = "fp64"

    def __post_init__(self) -> None:
        if self.weights not in PRECISIONS:
            raise ConfigurationError(
                f"precision must be one of {PRECISIONS}, got {self.weights!r}"
            )

    @classmethod
    def parse(cls, name: "str | Precision") -> "Precision":
        """Coerce a CLI/config string (or pass a policy through)."""
        if isinstance(name, Precision):
            return name
        return cls(weights=str(name))

    @property
    def is_quantized(self) -> bool:
        """True for any policy that transforms the stored weights."""
        return self.weights != "fp64"

    @property
    def storage_bytes(self) -> int:
        """Host bytes per stored weight element."""
        return STORAGE_BYTES[self.weights]

    @property
    def scale_bytes_per_row(self) -> int:
        """Host bytes of per-row scale metadata (int8 stores fp64 scales)."""
        return 8 if self.weights == "int8" else 0

    @property
    def tag(self) -> str:
        """Short identifier used in cache keys, fingerprints, and records."""
        return self.weights


def quantize_rows(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-row int8 quantization.

    Args:
        matrix: ``(R, C)`` float array.
    Returns:
        ``(codes, scales)``: int8 codes ``(R, C)`` and float64 per-row
        scales ``(R,)``. All-zero rows get ``scale = 0`` and all-zero
        codes (exact reconstruction).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ConfigurationError(f"expected a 2-D matrix, got shape {matrix.shape}")
    maxabs = np.max(np.abs(matrix), axis=1)
    scales = maxabs / INT8_LEVELS
    # Guard the division for all-zero rows; their codes are exactly zero.
    safe = np.where(scales > 0.0, scales, 1.0)
    codes = np.clip(np.rint(matrix / safe[:, None]), -INT8_LEVELS, INT8_LEVELS)
    return codes.astype(np.int8), scales


def dequantize_rows(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Widen int8 codes back to float64: ``codes * scales[:, None]``."""
    return codes.astype(np.float64) * np.asarray(scales, dtype=np.float64)[:, None]


@dataclass(frozen=True)
class QuantizedMatrix:
    """One stored weight matrix: quantized payload plus dequant metadata.

    Attributes:
        data: The stored payload — ``int8`` codes for the int8 policy,
            ``float16`` values for fp16.
        scales: Float64 per-row scales for int8; ``None`` for fp16.
    """

    data: np.ndarray
    scales: np.ndarray | None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def payload_bytes(self) -> int:
        """Host bytes of the stored payload including scale metadata."""
        total = self.data.nbytes
        if self.scales is not None:
            total += self.scales.nbytes
        return total

    def dequantize(self) -> np.ndarray:
        """Reconstruct the full float64 matrix."""
        if self.scales is None:
            return self.data.astype(np.float64)
        return dequantize_rows(self.data, self.scales)

    def dequantize_rows(self, rows: np.ndarray) -> np.ndarray:
        """Fused dequant of only the surviving rows (DRS-compacted GEMM).

        Bit-identical to ``self.dequantize()[rows]`` — per-row dequant is
        an independent elementwise multiply — but only ``len(rows)`` rows
        are widened, so the bytes touched scale with the skip.
        """
        if self.scales is None:
            return self.data[rows].astype(np.float64)
        return dequantize_rows(self.data[rows], self.scales[rows])


def quantize_matrix(matrix: np.ndarray, precision: Precision) -> QuantizedMatrix:
    """Quantize one matrix under ``precision`` (which must be quantized)."""
    if precision.weights == "int8":
        codes, scales = quantize_rows(matrix)
        return QuantizedMatrix(data=codes, scales=scales)
    if precision.weights == "fp16":
        return QuantizedMatrix(
            data=np.asarray(matrix, dtype=np.float64).astype(np.float16), scales=None
        )
    raise ConfigurationError(
        f"fp64 is the identity policy; nothing to quantize (got {precision})"
    )


@dataclass(frozen=True)
class QuantizedCell:
    """Quantized storage for one recurrent cell's ``W``/``U`` matrices.

    Attributes:
        precision: The policy that produced this cell.
        dequantized: Cell weights rebuilt in float64 — what the executor
            computes with (``LSTMCellWeights`` or ``GRUCellWeights``).
        w: Per-gate quantized input-projection payloads.
        u: Per-gate quantized recurrence payloads.
    """

    precision: Precision
    dequantized: "LSTMCellWeights | GRUCellWeights"
    w: dict[str, QuantizedMatrix]
    u: dict[str, QuantizedMatrix]

    @property
    def payload_bytes(self) -> int:
        """Total host bytes of all stored payloads (codes + scales)."""
        return sum(m.payload_bytes for m in self.w.values()) + sum(
            m.payload_bytes for m in self.u.values()
        )


def _gate_order_for(weights: "LSTMCellWeights | GRUCellWeights") -> tuple[str, ...]:
    if isinstance(weights, GRUCellWeights):
        return GRU_GATE_ORDER
    if isinstance(weights, LSTMCellWeights):
        return GATE_ORDER
    raise ConfigurationError(
        f"cannot quantize weights of type {type(weights).__name__}"
    )


def quantize_cell_weights(
    weights: "LSTMCellWeights | GRUCellWeights", precision: Precision
) -> QuantizedCell:
    """Quantize one cell's ``W``/``U`` under ``precision``.

    Biases pass through untouched (they are read once per gate per step
    and contribute nothing to the streamed-weight traffic the paper
    models). Works for both LSTM and GRU cells via their gate orders.
    """
    if not precision.is_quantized:
        raise ConfigurationError(
            "quantize_cell_weights requires a quantized precision; "
            "fp64 is the identity policy"
        )
    gates = _gate_order_for(weights)
    qw: dict[str, QuantizedMatrix] = {}
    qu: dict[str, QuantizedMatrix] = {}
    kwargs: dict[str, np.ndarray] = {}
    for gate in gates:
        for prefix, store in (("w", qw), ("u", qu)):
            name = f"{prefix}_{gate}"
            qm = quantize_matrix(getattr(weights, name), precision)
            store[gate] = qm
            kwargs[name] = qm.dequantize()
        kwargs[f"b_{gate}"] = getattr(weights, f"b_{gate}")
    return QuantizedCell(
        precision=precision,
        dequantized=type(weights)(**kwargs),
        w=qw,
        u=qu,
    )


def quantize_network_layers(network, precision: Precision) -> list[QuantizedCell]:
    """Quantize every layer of an :class:`~repro.nn.network.LSTMNetwork`.

    Returns one :class:`QuantizedCell` per layer. The network itself is
    never mutated — callers substitute ``cell.dequantized`` where they
    would have used ``layer.weights`` (the executor does exactly this,
    like zero pruning).
    """
    return [quantize_cell_weights(layer.weights, precision) for layer in network.layers]
