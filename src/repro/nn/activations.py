"""Activation functions and the sensitive-area algebra of Section IV-A.

The paper's inter-cell analysis rests on one property of the sigmoid and
tanh activations (Fig. 7): inside ``[-2, 2]`` the output tracks the input
(the *sensitive area*), outside that band the output is saturated (the
*insensitive area*). The same boundaries fit the hard-sigmoid approximation
some frameworks use, so the analysis is framework independent.
"""

from __future__ import annotations

import numpy as np

#: Lower / upper boundary of the sensitive area shared by sigmoid and tanh
#: (Fig. 7). Inputs outside ``[SENSITIVE_LO, SENSITIVE_HI]`` saturate.
SENSITIVE_LO: float = -2.0
SENSITIVE_HI: float = 2.0

#: Width of the sensitive area; Algorithm 2 clips per-element relevance
#: contributions to this value.
SENSITIVE_WIDTH: float = SENSITIVE_HI - SENSITIVE_LO


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Evaluates ``exp(-|x|)`` once and selects the positive/negative branch
    with ``where``: ``-|x|`` is exactly ``-x`` for ``x >= 0`` and exactly
    ``x`` otherwise, so each element matches the classic two-branch stable
    form bit for bit while avoiding the masked gather/scatter passes.
    """
    x = np.asarray(x, dtype=np.float64)
    ex = np.exp(-np.abs(x))
    denom = 1.0 + ex
    return np.where(x >= 0, 1.0 / denom, ex / denom)


def hard_sigmoid(x: np.ndarray) -> np.ndarray:
    """Piecewise-linear sigmoid approximation (Theano-style, Fig. 7a).

    ``hard_sigmoid(x) = clip(0.25 * x + 0.5, 0, 1)`` — exactly 0 below -2 and
    exactly 1 above +2, i.e. the sensitive-area boundaries are tight.
    """
    x = np.asarray(x, dtype=np.float64)
    return np.clip(0.25 * x + 0.5, 0.0, 1.0)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent (thin wrapper for a uniform activation namespace)."""
    return np.tanh(np.asarray(x, dtype=np.float64))


def sensitive_overlap(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Length of the overlap between input ranges ``[lo, hi]`` and the
    sensitive area ``[-2, 2]``.

    This is the geometric primitive behind Algorithm 2: a pre-activation
    whose reachable range misses the sensitive area entirely produces an
    output that is independent of ``h_{t-1}``, i.e. the context link does not
    matter for that element.

    Args:
        lo: Elementwise lower bounds of the pre-activation range.
        hi: Elementwise upper bounds (must satisfy ``hi >= lo``).

    Returns:
        Elementwise overlap lengths in ``[0, SENSITIVE_WIDTH]``.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    clipped_lo = np.maximum(lo, SENSITIVE_LO)
    clipped_hi = np.minimum(hi, SENSITIVE_HI)
    return np.maximum(clipped_hi - clipped_lo, 0.0)
