"""Activation functions and the sensitive-area algebra of Section IV-A.

The paper's inter-cell analysis rests on one property of the sigmoid and
tanh activations (Fig. 7): inside ``[-2, 2]`` the output tracks the input
(the *sensitive area*), outside that band the output is saturated (the
*insensitive area*). The same boundaries fit the hard-sigmoid approximation
some frameworks use, so the analysis is framework independent.
"""

from __future__ import annotations

import numpy as np

#: Lower / upper boundary of the sensitive area shared by sigmoid and tanh
#: (Fig. 7). Inputs outside ``[SENSITIVE_LO, SENSITIVE_HI]`` saturate.
SENSITIVE_LO: float = -2.0
SENSITIVE_HI: float = 2.0

#: Width of the sensitive area; Algorithm 2 clips per-element relevance
#: contributions to this value.
SENSITIVE_WIDTH: float = SENSITIVE_HI - SENSITIVE_LO


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Evaluates ``exp(-|x|)`` once and selects the positive/negative branch
    with ``where``: ``-|x|`` is exactly ``-x`` for ``x >= 0`` and exactly
    ``x`` otherwise, so each element matches the classic two-branch stable
    form bit for bit while avoiding the masked gather/scatter passes.
    """
    x = np.asarray(x, dtype=np.float64)
    ex = np.exp(-np.abs(x))
    denom = 1.0 + ex
    return np.where(x >= 0, 1.0 / denom, ex / denom)


def hard_sigmoid(x: np.ndarray) -> np.ndarray:
    """Piecewise-linear sigmoid approximation (Theano-style, Fig. 7a).

    ``hard_sigmoid(x) = clip(0.25 * x + 0.5, 0, 1)`` — exactly 0 below -2 and
    exactly 1 above +2, i.e. the sensitive-area boundaries are tight.
    """
    x = np.asarray(x, dtype=np.float64)
    return np.clip(0.25 * x + 0.5, 0.0, 1.0)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent (thin wrapper for a uniform activation namespace)."""
    return np.tanh(np.asarray(x, dtype=np.float64))


def dsigmoid(y: np.ndarray) -> np.ndarray:
    """Sigmoid derivative expressed in the *saved activation value*.

    For ``y = sigmoid(x)`` the derivative w.r.t. ``x`` is ``y * (1 - y)``.
    Taking the activation (not the pre-activation) as input is what makes
    the memory-frugal backward pass possible: the recompute policy rebuilds
    ``y`` from the saved states and never needs the pre-activation.
    """
    y = np.asarray(y, dtype=np.float64)
    return y * (1.0 - y)


def dtanh(y: np.ndarray) -> np.ndarray:
    """Tanh derivative in terms of the saved activation: ``1 - y**2``."""
    y = np.asarray(y, dtype=np.float64)
    return 1.0 - y * y


def dhard_sigmoid(y: np.ndarray) -> np.ndarray:
    """Hard-sigmoid derivative in terms of the saved activation value.

    ``hard_sigmoid`` has slope 0.25 on the linear segment and 0 on both
    saturated plateaus. The activation value alone identifies the segment:
    strictly inside ``(0, 1)`` the point sits on the ramp, at exactly 0 or
    1 it is clipped (the measure-zero kinks at ``x = ±2`` are assigned the
    saturated subgradient 0, matching the convention of major frameworks).
    """
    y = np.asarray(y, dtype=np.float64)
    return np.where((y > 0.0) & (y < 1.0), 0.25, 0.0)


def sigmoid_derivative_for(sigmoid_fn) -> "np.ufunc | object":
    """The activation-value derivative matching a forward sigmoid variant.

    The training stack lets layers swap :func:`hard_sigmoid` in for
    :func:`sigmoid`; the backward pass resolves the matching derivative
    here so both variants train through one code path.

    Raises:
        KeyError: For an unknown activation function.
    """
    table = {sigmoid: dsigmoid, hard_sigmoid: dhard_sigmoid}
    try:
        return table[sigmoid_fn]
    except KeyError:
        raise KeyError(
            f"no derivative registered for sigmoid variant {sigmoid_fn!r} "
            "(expected repro.nn.activations.sigmoid or hard_sigmoid)"
        ) from None


def sensitive_overlap(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Length of the overlap between input ranges ``[lo, hi]`` and the
    sensitive area ``[-2, 2]``.

    This is the geometric primitive behind Algorithm 2: a pre-activation
    whose reachable range misses the sensitive area entirely produces an
    output that is independent of ``h_{t-1}``, i.e. the context link does not
    matter for that element.

    Args:
        lo: Elementwise lower bounds of the pre-activation range.
        hi: Elementwise upper bounds (must satisfy ``hi >= lo``).

    Returns:
        Elementwise overlap lengths in ``[0, SENSITIVE_WIDTH]``.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    clipped_lo = np.maximum(lo, SENSITIVE_LO)
    clipped_hi = np.minimum(hi, SENSITIVE_HI)
    return np.maximum(clipped_hi - clipped_lo, 0.0)
