"""Gated Recurrent Unit (GRU) extension.

Section II-B notes the proposed methods "can also be applied to GRUs with
simple adjustment". This module provides that adjustment surface: a GRU cell
and layer with the same interface shape as the LSTM ones, including support
for skipping trivial rows of the candidate/reset matrices (the GRU analogue
of DRS, gated by the update gate ``z_t``).

GRU equations::

    z_t = sigma(W_z x_t + U_z h_{t-1} + b_z)          (update gate)
    r_t = sigma(W_r x_t + U_r h_{t-1} + b_r)          (reset gate)
    n_t = tanh(W_n x_t + U_n (r_t * h_{t-1}) + b_n)   (candidate)
    h_t = (1 - z_t) * h_{t-1} + z_t * n_t
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ShapeError
from repro.nn.activations import dtanh, sigmoid, sigmoid_derivative_for, tanh
from repro.nn.initializers import WeightInitializer

#: Gate order for the united GRU matrices.
GRU_GATE_ORDER: tuple[str, ...] = ("z", "r", "n")


@dataclass
class GRUCellWeights:
    """Weights of one GRU layer's cell."""

    w_z: np.ndarray
    w_r: np.ndarray
    w_n: np.ndarray
    u_z: np.ndarray
    u_r: np.ndarray
    u_n: np.ndarray
    b_z: np.ndarray
    b_r: np.ndarray
    b_n: np.ndarray

    def __post_init__(self) -> None:
        hidden = self.u_z.shape[0]
        for name in ("u_z", "u_r", "u_n"):
            mat = getattr(self, name)
            if mat.shape != (hidden, hidden):
                raise ShapeError(f"{name} must be ({hidden}, {hidden}), got {mat.shape}")
        input_size = self.w_z.shape[1]
        for name in ("w_z", "w_r", "w_n"):
            mat = getattr(self, name)
            if mat.shape != (hidden, input_size):
                raise ShapeError(f"{name} must be ({hidden}, {input_size}), got {mat.shape}")
        for name in ("b_z", "b_r", "b_n"):
            vec = getattr(self, name)
            if vec.shape != (hidden,):
                raise ShapeError(f"{name} must be ({hidden},), got {vec.shape}")

    @property
    def hidden_size(self) -> int:
        """Number of hidden units ``H``."""
        return self.u_z.shape[0]

    @property
    def input_size(self) -> int:
        """Width of the layer input."""
        return self.w_z.shape[1]

    @classmethod
    def initialize(
        cls, hidden_size: int, input_size: int, init: WeightInitializer
    ) -> "GRUCellWeights":
        """Create freshly initialized GRU weights."""
        return cls(
            w_z=init.xavier_uniform(hidden_size, input_size),
            w_r=init.xavier_uniform(hidden_size, input_size),
            w_n=init.xavier_uniform(hidden_size, input_size),
            u_z=init.orthogonal(hidden_size, hidden_size),
            u_r=init.orthogonal(hidden_size, hidden_size),
            u_n=init.orthogonal(hidden_size, hidden_size),
            b_z=init.bias(hidden_size),
            b_r=init.bias(hidden_size),
            b_n=init.bias(hidden_size),
        )


def gru_cell_step(
    weights: GRUCellWeights,
    x_t: np.ndarray,
    h_prev: np.ndarray,
    skip_rows: np.ndarray | None = None,
    sigmoid_fn: Callable[[np.ndarray], np.ndarray] = sigmoid,
) -> np.ndarray:
    """Advance one GRU cell by one timestep.

    ``skip_rows`` marks rows of ``U_r`` / ``U_n`` whose update-gate element
    is near *zero* — for those elements ``h_t ~= h_{t-1}`` regardless of the
    candidate, so the candidate computation can be skipped (the GRU analogue
    of the paper's DRS, with ``z_t`` playing the role of ``o_t``).
    """
    x_t = np.asarray(x_t, dtype=np.float64)
    h_prev = np.asarray(h_prev, dtype=np.float64)
    z = sigmoid_fn(x_t @ weights.w_z.T + h_prev @ weights.u_z.T + weights.b_z)

    if skip_rows is None:
        r = sigmoid_fn(x_t @ weights.w_r.T + h_prev @ weights.u_r.T + weights.b_r)
        n = tanh(x_t @ weights.w_n.T + (r * h_prev) @ weights.u_n.T + weights.b_n)
        return (1.0 - z) * h_prev + z * n

    skip_rows = np.asarray(skip_rows, dtype=bool)
    if skip_rows.shape != (weights.hidden_size,):
        raise ShapeError(f"skip_rows must be ({weights.hidden_size},), got {skip_rows.shape}")
    keep = ~skip_rows
    r = np.zeros_like(z)
    n = np.zeros_like(z)
    if np.any(keep):
        r_kept = sigmoid_fn(
            x_t @ weights.w_r[keep].T + h_prev @ weights.u_r[keep].T + weights.b_r[keep]
        )
        r[..., keep] = r_kept
        full_r = np.zeros_like(z)
        full_r[..., keep] = r_kept
        n_kept = tanh(
            x_t @ weights.w_n[keep].T
            + (full_r * h_prev) @ weights.u_n[keep].T
            + weights.b_n[keep]
        )
        n[..., keep] = n_kept
    # Skipped elements keep the previous hidden value (z ~= 0 there).
    return np.where(keep, (1.0 - z) * h_prev + z * n, h_prev)


def gru_layer_backward(
    weights: GRUCellWeights,
    xs: np.ndarray,
    hs: np.ndarray,
    d_hs: np.ndarray,
    sigmoid_fn: Callable[[np.ndarray], np.ndarray] = sigmoid,
) -> tuple[np.ndarray, GRUCellWeights]:
    """Low-memory backward pass of one GRU layer.

    The GRU analogue of the LSTM recompute policy: only the hidden
    sequence ``hs`` is saved from forward; the gates ``z/r/n`` are rebuilt
    inside the backward loop from ``xs`` and ``hs`` with the identical
    forward arithmetic, so no gate stash is ever retained.

    Args:
        weights: The layer weights the forward ran with.
        xs: Forward inputs, shape ``(T, E)``.
        hs: The forward's hidden outputs, shape ``(T, H)``
            (:meth:`GRULayer.forward` return value; ``h0`` is assumed
            zero, matching the layer's default).
        d_hs: Loss gradient w.r.t. every hidden output, shape ``(T, H)``.
        sigmoid_fn: The gate activation the forward used (its derivative
            is resolved via :func:`~repro.nn.activations.
            sigmoid_derivative_for`).

    Returns:
        ``(d_xs, gradients)`` — input gradients of shape ``(T, E)`` and
        the weight gradients in a :class:`GRUCellWeights`-shaped
        container.
    """
    xs = np.asarray(xs, dtype=np.float64)
    hs = np.asarray(hs, dtype=np.float64)
    d_hs = np.asarray(d_hs, dtype=np.float64)
    seq_len, hidden = hs.shape
    if xs.shape != (seq_len, weights.input_size):
        raise ShapeError(
            f"xs must be ({seq_len}, {weights.input_size}), got {xs.shape}"
        )
    if d_hs.shape != hs.shape:
        raise ShapeError(f"d_hs must match hs shape {hs.shape}, got {d_hs.shape}")
    dsig = sigmoid_derivative_for(sigmoid_fn)

    dpre_z = np.empty((seq_len, hidden))
    dpre_r = np.empty((seq_len, hidden))
    dpre_n = np.empty((seq_len, hidden))
    # (r_t * h_{t-1}) feeds U_n; rebuilt per step and kept for the final
    # weight-gradient GEMM.
    rh = np.empty((seq_len, hidden))
    h_prevs = np.zeros((seq_len, hidden))
    h_prevs[1:] = hs[:-1]

    dh_carry = np.zeros(hidden)
    for t in range(seq_len - 1, -1, -1):
        h_prev = h_prevs[t]
        # Identical forward arithmetic (gru_cell_step, unskipped path).
        z = sigmoid_fn(xs[t] @ weights.w_z.T + h_prev @ weights.u_z.T + weights.b_z)
        r = sigmoid_fn(xs[t] @ weights.w_r.T + h_prev @ weights.u_r.T + weights.b_r)
        rh[t] = r * h_prev
        n = tanh(xs[t] @ weights.w_n.T + rh[t] @ weights.u_n.T + weights.b_n)

        dh = d_hs[t] + dh_carry
        dz = dh * (n - h_prev)
        dn = dh * z
        dh_prev = dh * (1.0 - z)
        dpre_n[t] = dn * dtanh(n)
        drh = dpre_n[t] @ weights.u_n
        dh_prev = dh_prev + drh * r
        dpre_r[t] = (drh * h_prev) * dsig(r)
        dpre_z[t] = dz * dsig(z)
        dh_carry = dh_prev + dpre_z[t] @ weights.u_z + dpre_r[t] @ weights.u_r

    d_xs = dpre_z @ weights.w_z + dpre_r @ weights.w_r + dpre_n @ weights.w_n
    grads = GRUCellWeights(
        w_z=dpre_z.T @ xs,
        w_r=dpre_r.T @ xs,
        w_n=dpre_n.T @ xs,
        u_z=dpre_z.T @ h_prevs,
        u_r=dpre_r.T @ h_prevs,
        u_n=dpre_n.T @ rh,
        b_z=dpre_z.sum(axis=0),
        b_r=dpre_r.sum(axis=0),
        b_n=dpre_n.sum(axis=0),
    )
    return d_xs, grads


class GRULayer:
    """An unrolled GRU layer mirroring :class:`~repro.nn.lstm_layer.LSTMLayer`."""

    def __init__(
        self,
        weights: GRUCellWeights,
        sigmoid_fn: Callable[[np.ndarray], np.ndarray] = sigmoid,
    ) -> None:
        self.weights = weights
        self.sigmoid_fn = sigmoid_fn

    @property
    def hidden_size(self) -> int:
        """Number of hidden units ``H``."""
        return self.weights.hidden_size

    @property
    def input_size(self) -> int:
        """Width of the per-timestep input vector."""
        return self.weights.input_size

    @classmethod
    def create(
        cls, hidden_size: int, input_size: int, init: WeightInitializer
    ) -> "GRULayer":
        """Build a layer with freshly initialized weights."""
        return cls(GRUCellWeights.initialize(hidden_size, input_size, init))

    def forward(self, xs: np.ndarray, h0: np.ndarray | None = None) -> np.ndarray:
        """Exact sequential execution; returns hidden outputs ``(T, H)``."""
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim != 2 or xs.shape[1] != self.input_size:
            raise ShapeError(f"layer expects (T, {self.input_size}) inputs, got {xs.shape}")
        h = h0 if h0 is not None else np.zeros(self.hidden_size)
        out = np.empty((xs.shape[0], self.hidden_size))
        for t in range(xs.shape[0]):
            h = gru_cell_step(self.weights, xs[t], h, sigmoid_fn=self.sigmoid_fn)
            out[t] = h
        return out
