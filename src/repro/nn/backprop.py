"""Memory-frugal truncated BPTT for the stacked LSTM.

Training footprint of an unrolled LSTM is dominated not by the weights but
by the *stashed per-timestep activations* the backward pass consumes: four
gate activations plus the cell-state tanh per cell per timestep. Echo
(PAPERS.md) showed that recomputing those tensors during the backward sweep
cuts the training footprint by multiples at a small compute cost, and
RETURNN's ``LstmOpLowMem`` demonstrates the minimal-saved-tensor recipe:
keep only the per-timestep outputs ``Y`` and cell states ``C`` and rebuild
``i/f/g/o`` from them on the way back.

This module implements both ends of that trade as selectable *saved-tensor
policies* on :class:`TrainingConfig`:

* ``"stash"`` — the baseline tape: every gate activation, ``tanh(c_t)``,
  ``C`` and ``Y`` are saved per layer per timestep (7 ``B x T x H`` tensors
  per layer, plus the embedded layer-0 input).
* ``"recompute"`` — the Echo/LstmOpLowMem tape: only ``Y`` and ``C`` are
  saved (2 tensors per layer); the backward sweep re-runs the *identical*
  forward arithmetic — the same :func:`_batched_input_projections` GEMMs
  over the same inputs, the same :func:`_step_gates` expressions on the
  same saved ``h_{t-1}`` bits — so the rebuilt gates are bit-identical to
  the stashed ones and the two policies produce **bit-identical fp64
  gradients** (an equality contract, not a tolerance; gated in
  ``benchmarks/bench_training.py``).

The backward pass itself is vectorized like the PR-1 executor: batched
``(B, T, ·)`` tensors, the per-gate pre-activation gradients buffered
across timesteps so the weight-gradient reductions collapse into one GEMM
per gate, and derivatives expressed through the saved activation values
(:func:`repro.nn.activations.dsigmoid` / :func:`~repro.nn.activations.
dtanh`), never the pre-activations.

Peak-memory accounting comes in two planes, mirroring the inference-side
bytes-moved discipline: an *analytic* saved-tensor bytes model
(:meth:`TrainingTape.memory_report`, surfaced through ``RunRecord.memory``
and ``repro trace summarize``) and a *measured* ``tracemalloc`` high-water
figure (:func:`measure_training_memory`).
"""

from __future__ import annotations

import gc
import tracemalloc
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.activations import dtanh, sigmoid, sigmoid_derivative_for
from repro.nn.lstm_cell import GATE_ORDER, LSTMCellWeights
from repro.nn.network import LSTMNetwork

#: Bytes per saved fp64 element.
ELEMENT_BYTES: int = 8

#: The selectable saved-tensor policies.
POLICIES: tuple[str, ...] = ("stash", "recompute")

#: Saved ``(B, T, H)`` tensors per layer under each policy: the stash tape
#: keeps f, i, g, o, tanh(c), c and y; the recompute tape keeps c and y.
SAVED_TENSORS_PER_LAYER: dict[str, int] = {"stash": 7, "recompute": 2}


@dataclass(frozen=True)
class TrainingConfig:
    """How the training forward/backward pair runs.

    Attributes:
        policy: Saved-tensor policy — ``"stash"`` (keep all gate
            activations) or ``"recompute"`` (keep only ``Y``/``C`` and
            rebuild the gates during the backward sweep).
        truncation: Truncated-BPTT window length ``K``: gradients do not
            flow across window boundaries (multiples of ``K`` from the
            sequence start). ``None`` means full backpropagation through
            time.
    """

    policy: str = "recompute"
    truncation: int | None = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown saved-tensor policy {self.policy!r} "
                f"(choose from {', '.join(POLICIES)})"
            )
        if self.truncation is not None and self.truncation < 1:
            raise ConfigurationError(
                f"truncation must be a positive window length, got {self.truncation}"
            )


@dataclass
class LayerTape:
    """Saved tensors of one layer, shaped by the active policy.

    ``y`` and ``c`` (each ``(B, T, H)``) are always present — they are the
    minimal set the recompute policy needs. The gate activations and
    ``tanh_c`` are populated only under the stash policy.
    """

    y: np.ndarray
    c: np.ndarray
    f: np.ndarray | None = None
    i: np.ndarray | None = None
    g: np.ndarray | None = None
    o: np.ndarray | None = None
    tanh_c: np.ndarray | None = None

    def saved_bytes(self) -> int:
        """Analytic bytes this layer's tape retains between passes."""
        total = self.y.nbytes + self.c.nbytes
        for extra in (self.f, self.i, self.g, self.o, self.tanh_c):
            if extra is not None:
                total += extra.nbytes
        return total


@dataclass
class TrainingTape:
    """Everything :func:`backward` needs, retained between the passes.

    Under the recompute policy the embedded layer-0 input is *not*
    retained either — ``tokens`` (integers) are kept and the embedding
    gather re-runs in backward, bit-identically.
    """

    network: LSTMNetwork
    config: TrainingConfig
    tokens: np.ndarray
    logits: np.ndarray
    layers: list[LayerTape]
    embedded: np.ndarray | None = None

    # ------------------------------------------------------------- memory

    def saved_bytes(self) -> int:
        """Analytic bytes the tape retains between forward and backward."""
        total = sum(tape.saved_bytes() for tape in self.layers)
        if self.embedded is not None:
            total += self.embedded.nbytes
        return total

    def memory_report(self) -> dict[str, float]:
        """The ``RunRecord.memory`` mapping for this tape.

        Keys are plain numbers (the schema treats ``memory`` as an open
        ``str -> number`` mapping, like ``cache``): per-layer saved bytes,
        the policy's total, and the analytic totals both policies *would*
        retain on this workload — the stash/recompute ratio is the
        footprint reduction the active policy buys.
        """
        batch, seq_len = self.tokens.shape
        report: dict[str, float] = {}
        for index, tape in enumerate(self.layers):
            report[f"layer{index}_saved_bytes"] = float(tape.saved_bytes())
        report["saved_bytes"] = float(self.saved_bytes())
        for policy in POLICIES:
            report[f"saved_bytes_{policy}"] = float(
                analytic_saved_bytes(self.network, batch, seq_len, policy)
            )
        return report


@dataclass
class Gradients:
    """Gradients of every parameter of an :class:`LSTMNetwork`.

    Layer gradients reuse :class:`~repro.nn.lstm_cell.LSTMCellWeights` as a
    shape-validated container (``w_f`` holds ``dL/dW_f`` and so on).
    """

    embedding: np.ndarray
    layers: list[LSTMCellWeights] = field(default_factory=list)
    head_weight: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    head_bias: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def arrays(self) -> list[np.ndarray]:
        """All gradient arrays in the canonical parameter order.

        The order matches :func:`network_parameters`, so optimizers can
        zip parameters with gradients positionally.
        """
        out = [self.embedding]
        for layer in self.layers:
            for gate in GATE_ORDER:
                out.append(layer.gate_w(gate))
            for gate in GATE_ORDER:
                out.append(layer.gate_u(gate))
            for gate in GATE_ORDER:
                out.append(layer.gate_b(gate))
        out.append(self.head_weight)
        out.append(self.head_bias)
        return out

    def allclose(self, other: "Gradients", exact: bool = True) -> bool:
        """Compare two gradient sets array-wise (exact bit equality by
        default — the stash/recompute contract)."""
        mine, theirs = self.arrays(), other.arrays()
        if len(mine) != len(theirs):
            return False
        for a, b in zip(mine, theirs):
            if a.shape != b.shape:
                return False
            if exact:
                if not np.array_equal(a, b):
                    return False
            elif not np.allclose(a, b):
                return False
        return True


def network_parameters(network: LSTMNetwork) -> list[np.ndarray]:
    """Every trainable array of a network, in the canonical order.

    Order: embedding, then per layer ``W_{f,i,c,o}``, ``U_{f,i,c,o}``,
    ``b_{f,i,c,o}``, then head weight and bias — matching
    :meth:`Gradients.arrays`.
    """
    out = [network.embedding]
    for layer in network.layers:
        weights = layer.weights
        for gate in GATE_ORDER:
            out.append(weights.gate_w(gate))
        for gate in GATE_ORDER:
            out.append(weights.gate_u(gate))
        for gate in GATE_ORDER:
            out.append(weights.gate_b(gate))
    out.append(network.head_weight)
    out.append(network.head_bias)
    return out


def analytic_saved_bytes(
    network: LSTMNetwork, batch: int, seq_len: int, policy: str
) -> int:
    """The saved-tensor bytes model: what one policy retains per tape.

    Per layer: ``SAVED_TENSORS_PER_LAYER[policy]`` fp64 tensors of shape
    ``(B, T, H)``. The stash policy additionally retains the embedded
    layer-0 input ``(B, T, E)``; the recompute policy re-gathers it from
    the integer tokens during backward.
    """
    if policy not in POLICIES:
        raise ConfigurationError(f"unknown saved-tensor policy {policy!r}")
    hidden = network.config.hidden_size
    per_layer = SAVED_TENSORS_PER_LAYER[policy] * batch * seq_len * hidden
    total = per_layer * network.num_layers * ELEMENT_BYTES
    if policy == "stash":
        total += batch * seq_len * network.config.effective_input_size * ELEMENT_BYTES
    return total


# ------------------------------------------------------------------ forward


def _batched_input_projections(
    weights: LSTMCellWeights, xs: np.ndarray
) -> dict[str, np.ndarray]:
    """Per-gate input projections over a whole ``(B, T, E)`` block.

    One GEMM per gate over the flattened ``(B*T, E)`` inputs. The backward
    recompute path calls this very function on the very same inputs, which
    is what makes the rebuilt pre-activations bit-identical to forward.
    """
    batch, seq_len, _ = xs.shape
    flat = xs.reshape(batch * seq_len, -1)
    return {
        gate: (flat @ weights.gate_w(gate).T).reshape(batch, seq_len, -1)
        for gate in GATE_ORDER
    }


def _step_gates(
    weights: LSTMCellWeights,
    proj_t: dict[str, np.ndarray],
    h_prev: np.ndarray,
    sigmoid_fn,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Gate activations of one timestep (Eq. 1-4), batched over ``B``.

    Shared verbatim by the training forward and the backward recompute
    path — single source of the arithmetic, hence bit-identical rebuilds.
    """
    f = sigmoid_fn(proj_t["f"] + h_prev @ weights.u_f.T + weights.b_f)
    i = sigmoid_fn(proj_t["i"] + h_prev @ weights.u_i.T + weights.b_i)
    g = np.tanh(proj_t["c"] + h_prev @ weights.u_c.T + weights.b_c)
    o = sigmoid_fn(proj_t["o"] + h_prev @ weights.u_o.T + weights.b_o)
    return f, i, g, o


def _embed_batch(network: LSTMNetwork, tokens: np.ndarray) -> np.ndarray:
    """Batched embedding lookup ``(B, T) -> (B, T, E)`` with range checks."""
    tokens = np.asarray(tokens)
    if tokens.ndim != 2:
        raise ShapeError(f"tokens must be 2-D (B, T), got shape {tokens.shape}")
    if tokens.min(initial=0) < 0 or tokens.max(initial=0) >= network.vocab_size:
        raise ShapeError("token id out of vocabulary range")
    return network.embedding[tokens]


def training_forward(
    network: LSTMNetwork,
    tokens: np.ndarray,
    config: TrainingConfig | None = None,
) -> TrainingTape:
    """Batched forward pass that retains the policy's saved tensors.

    Args:
        network: The model (fp64 numpy weights).
        tokens: Integer token batch of shape ``(B, T)``.
        config: Saved-tensor policy and truncation window.

    Returns:
        A :class:`TrainingTape` holding ``logits`` plus per-layer saved
        tensors sized by the policy.
    """
    config = config if config is not None else TrainingConfig()
    tokens = np.asarray(tokens)
    xs = _embed_batch(network, tokens)
    embedded = xs if config.policy == "stash" else None
    batch, seq_len = tokens.shape
    hidden = network.config.hidden_size

    layer_tapes: list[LayerTape] = []
    for layer in network.layers:
        weights = layer.weights
        sigmoid_fn = layer.sigmoid_fn
        proj = _batched_input_projections(weights, xs)
        ys = np.empty((batch, seq_len, hidden))
        cs = np.empty((batch, seq_len, hidden))
        stash = config.policy == "stash"
        fs = np.empty_like(ys) if stash else None
        is_ = np.empty_like(ys) if stash else None
        gs = np.empty_like(ys) if stash else None
        os_ = np.empty_like(ys) if stash else None
        tanh_cs = np.empty_like(ys) if stash else None

        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        for t in range(seq_len):
            proj_t = {gate: proj[gate][:, t] for gate in GATE_ORDER}
            f, i, g, o = _step_gates(weights, proj_t, h, sigmoid_fn)
            c = f * c + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            ys[:, t] = h
            cs[:, t] = c
            if stash:
                fs[:, t] = f
                is_[:, t] = i
                gs[:, t] = g
                os_[:, t] = o
                tanh_cs[:, t] = tanh_c
        layer_tapes.append(
            LayerTape(y=ys, c=cs, f=fs, i=is_, g=gs, o=os_, tanh_c=tanh_cs)
        )
        xs = ys  # next layer consumes this layer's outputs

    top = layer_tapes[-1].y
    if network.per_timestep_head:
        logits = network.head_logits(top)
    else:
        logits = network.head_logits(network.pool_top(top))
    return TrainingTape(
        network=network,
        config=config,
        tokens=tokens,
        logits=logits,
        layers=layer_tapes,
        embedded=embedded,
    )


# --------------------------------------------------------------------- loss


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy and its gradient w.r.t. the logits.

    Args:
        logits: ``(B, C)`` (sequence-final heads) or ``(B, T, C)``
            (per-timestep heads).
        labels: Integer classes, ``(B,)`` or ``(B, T)``.

    Returns:
        ``(loss, dlogits)`` — the mean is over every scored position, so
        ``dlogits`` already carries the ``1/N`` factor.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels)
    if labels.shape != logits.shape[:-1]:
        raise ShapeError(
            f"labels shape {labels.shape} does not match logits {logits.shape}"
        )
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    denom = exp.sum(axis=-1, keepdims=True)
    log_probs = shifted - np.log(denom)
    picked = np.take_along_axis(log_probs, labels[..., None], axis=-1)[..., 0]
    count = picked.size
    loss = float(-picked.sum() / count)
    dlogits = exp / denom
    flat = dlogits.reshape(-1, dlogits.shape[-1])
    flat[np.arange(count), labels.reshape(-1)] -= 1.0
    dlogits /= count
    return loss, dlogits


# ----------------------------------------------------------------- backward


def _layer_backward(
    layer_index: int,
    tape: TrainingTape,
    xs: np.ndarray,
    d_y: np.ndarray,
) -> tuple[np.ndarray, LSTMCellWeights]:
    """Backward sweep of one layer; returns ``(d_xs, weight gradients)``.

    ``xs`` is the layer's forward input block ``(B, T, E)`` (the layer
    below's saved ``y``, or the embedded tokens for layer 0). ``d_y`` is
    the loss gradient w.r.t. this layer's outputs.
    """
    layer = tape.network.layers[layer_index]
    weights = layer.weights
    sigmoid_fn = layer.sigmoid_fn
    dsig = sigmoid_derivative_for(sigmoid_fn)
    saved = tape.layers[layer_index]
    batch, seq_len, hidden = saved.y.shape
    recompute = tape.config.policy == "recompute"
    truncation = tape.config.truncation

    # Recompute path: rebuild the input projections with the identical
    # batched GEMMs the forward used — same inputs, same call, same bits.
    proj = _batched_input_projections(weights, xs) if recompute else None

    # Pre-activation gradients buffered across timesteps so every weight
    # reduction below collapses into one GEMM per gate.
    dpre = {gate: np.empty((batch, seq_len, hidden)) for gate in GATE_ORDER}
    dh_carry = np.zeros((batch, hidden))
    dc_carry = np.zeros((batch, hidden))

    for t in range(seq_len - 1, -1, -1):
        c_prev = saved.c[:, t - 1] if t > 0 else np.zeros((batch, hidden))
        h_prev = saved.y[:, t - 1] if t > 0 else np.zeros((batch, hidden))
        if recompute:
            proj_t = {gate: proj[gate][:, t] for gate in GATE_ORDER}
            f, i, g, o = _step_gates(weights, proj_t, h_prev, sigmoid_fn)
            tanh_c = np.tanh(saved.c[:, t])
        else:
            f, i, g, o = saved.f[:, t], saved.i[:, t], saved.g[:, t], saved.o[:, t]
            tanh_c = saved.tanh_c[:, t]

        dh = d_y[:, t] + dh_carry
        do = dh * tanh_c
        dc = dc_carry + dh * o * dtanh(tanh_c)
        df = dc * c_prev
        di = dc * g
        dg = dc * i
        dpre["f"][:, t] = df * dsig(f)
        dpre["i"][:, t] = di * dsig(i)
        dpre["c"][:, t] = dg * dtanh(g)
        dpre["o"][:, t] = do * dsig(o)
        dh_carry = (
            dpre["f"][:, t] @ weights.u_f
            + dpre["i"][:, t] @ weights.u_i
            + dpre["c"][:, t] @ weights.u_c
            + dpre["o"][:, t] @ weights.u_o
        )
        dc_carry = dc * f
        if truncation is not None and t % truncation == 0:
            # Window boundary: gradients do not flow into the previous
            # truncation window (the h/c carried across the boundary are
            # treated as constants, the standard TBPTT contract).
            dh_carry = np.zeros((batch, hidden))
            dc_carry = np.zeros((batch, hidden))

    # One GEMM per gate for each weight-gradient reduction.
    flat_x = xs.reshape(batch * seq_len, -1)
    h_prevs = np.empty_like(saved.y)
    h_prevs[:, 0] = 0.0
    h_prevs[:, 1:] = saved.y[:, :-1]
    flat_h = h_prevs.reshape(batch * seq_len, hidden)
    grads: dict[str, np.ndarray] = {}
    for gate in GATE_ORDER:
        flat_dpre = dpre[gate].reshape(batch * seq_len, hidden)
        grads[f"w_{gate}"] = flat_dpre.T @ flat_x
        grads[f"u_{gate}"] = flat_dpre.T @ flat_h
        grads[f"b_{gate}"] = dpre[gate].sum(axis=(0, 1))

    d_xs = (
        dpre["f"].reshape(batch * seq_len, hidden) @ weights.w_f
        + dpre["i"].reshape(batch * seq_len, hidden) @ weights.w_i
        + dpre["c"].reshape(batch * seq_len, hidden) @ weights.w_c
        + dpre["o"].reshape(batch * seq_len, hidden) @ weights.w_o
    ).reshape(xs.shape)
    layer_grads = LSTMCellWeights(
        w_f=grads["w_f"], w_i=grads["w_i"], w_c=grads["w_c"], w_o=grads["w_o"],
        u_f=grads["u_f"], u_i=grads["u_i"], u_c=grads["u_c"], u_o=grads["u_o"],
        b_f=grads["b_f"], b_i=grads["b_i"], b_c=grads["b_c"], b_o=grads["b_o"],
    )
    return d_xs, layer_grads


def backward(tape: TrainingTape, labels: np.ndarray) -> tuple[float, Gradients]:
    """Full backward pass: loss, head, stacked layers, embedding.

    Args:
        tape: The retained forward state (:func:`training_forward`).
        labels: Integer targets — ``(B,)`` for sequence-final heads,
            ``(B, T)`` for per-timestep heads.

    Returns:
        ``(loss, gradients)``. Gradients are exact fp64 derivatives of the
        mean cross-entropy (subject to the truncation window), identical
        bit for bit under both saved-tensor policies.
    """
    network = tape.network
    batch, seq_len = tape.tokens.shape
    hidden = network.config.hidden_size
    loss, dlogits = softmax_cross_entropy(tape.logits, labels)

    top = tape.layers[-1].y
    if network.per_timestep_head:
        flat_dlogits = dlogits.reshape(batch * seq_len, -1)
        d_head_w = flat_dlogits.T @ top.reshape(batch * seq_len, hidden)
        d_head_b = flat_dlogits.sum(axis=0)
        d_top = (flat_dlogits @ network.head_weight).reshape(batch, seq_len, hidden)
    else:
        pooled = network.pool_top(top)
        d_head_w = dlogits.T @ pooled
        d_head_b = dlogits.sum(axis=0)
        d_pooled = dlogits @ network.head_weight
        d_top = np.zeros((batch, seq_len, hidden))
        pool = network.head_pool
        d_top[:, seq_len - pool:] = d_pooled[:, None, :] / pool

    layer_grads: list[LSTMCellWeights | None] = [None] * network.num_layers
    d_y = d_top
    if tape.embedded is not None:
        embedded = tape.embedded
    else:
        embedded = _embed_batch(network, tape.tokens)
    for index in range(network.num_layers - 1, -1, -1):
        xs = embedded if index == 0 else tape.layers[index - 1].y
        d_xs, grads = _layer_backward(index, tape, xs, d_y)
        layer_grads[index] = grads
        d_y = d_xs

    d_embedding = np.zeros_like(network.embedding)
    np.add.at(
        d_embedding,
        tape.tokens.reshape(-1),
        d_y.reshape(batch * seq_len, -1),
    )
    return loss, Gradients(
        embedding=d_embedding,
        layers=list(layer_grads),
        head_weight=d_head_w,
        head_bias=d_head_b,
    )


def training_step(
    network: LSTMNetwork,
    tokens: np.ndarray,
    labels: np.ndarray,
    config: TrainingConfig | None = None,
) -> tuple[float, Gradients]:
    """One forward + backward pair; returns ``(loss, gradients)``."""
    tape = training_forward(network, tokens, config)
    return backward(tape, labels)


# ---------------------------------------------------------- measured memory


def measure_training_memory(
    network: LSTMNetwork,
    tokens: np.ndarray,
    labels: np.ndarray,
    config: TrainingConfig | None = None,
) -> dict[str, float]:
    """Measured (``tracemalloc``) training-step memory for one policy.

    Returns a mapping with:

    * ``measured_saved_bytes`` — traced bytes *retained* by the tape
      between forward and backward (the saved-tensor footprint the
      analytic model predicts),
    * ``measured_peak_bytes`` — the traced high-water mark across the
      whole forward + backward step (transients included).

    Only allocations made during the step are traced (the network itself
    is built beforehand), so the figures isolate the training memory.
    Tracing slows allocation; never time a step while measuring it.
    """
    config = config if config is not None else TrainingConfig()
    gc.collect()
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        before_current, _ = tracemalloc.get_traced_memory()
        tape = training_forward(network, tokens, config)
        gc.collect()
        after_forward, _ = tracemalloc.get_traced_memory()
        loss, grads = backward(tape, labels)
        _, peak = tracemalloc.get_traced_memory()
        del loss, grads
    finally:
        tracemalloc.stop()
    return {
        "measured_saved_bytes": float(after_forward - before_current),
        "measured_peak_bytes": float(peak - before_current),
        "analytic_saved_bytes": float(tape.saved_bytes()),
    }
