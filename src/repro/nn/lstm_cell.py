"""LSTM cell mathematics (paper Eq. 1-5).

One cell maps ``(x_t, h_{t-1}, c_{t-1})`` to ``(h_t, c_t)`` through three
gates::

    f_t = sigma(W_f x_t + U_f h_{t-1} + b_f)                   (Eq. 1)
    i_t = sigma(W_i x_t + U_i h_{t-1} + b_i)                   (Eq. 2)
    c_t = f_t * c_{t-1} + i_t * tanh(W_c x_t + U_c h_{t-1} + b_c)  (Eq. 3)
    o_t = sigma(W_o x_t + U_o h_{t-1} + b_o)                   (Eq. 4)
    h_t = o_t * tanh(c_t)                                      (Eq. 5)

The module also implements the *dynamic row skip* semantics of Section V-A:
given a boolean mask of trivial rows (rows of ``U_{f,i,c}`` whose matching
``o_t`` element is near zero), the skipped rows are neither loaded nor
computed, and the corresponding ``c_t`` elements are approximated to zero —
exactly the paper's approximation.

All functions accept either single vectors (shape ``(H,)``) or batches
(shape ``(B, H)``); the gate order used throughout the package for the
united matrices is ``(f, i, c, o)``, matching the paper's subscripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ShapeError
from repro.nn.activations import sigmoid, tanh
from repro.nn.initializers import WeightInitializer

#: Canonical gate order for the united matrices ``W_{f,i,c,o}`` / ``U_{f,i,c,o}``.
GATE_ORDER: tuple[str, ...] = ("f", "i", "c", "o")


@dataclass
class LSTMCellWeights:
    """Weights of one LSTM layer's cell.

    The per-gate matrices are stored separately (``w_f .. b_o``) because the
    optimizations treat them differently — DRS skips rows of ``U_f, U_i,
    U_c`` but never ``U_o`` — while :meth:`united_u` / :meth:`united_w`
    expose the concatenated forms the GPU kernels operate on.
    """

    w_f: np.ndarray
    w_i: np.ndarray
    w_c: np.ndarray
    w_o: np.ndarray
    u_f: np.ndarray
    u_i: np.ndarray
    u_c: np.ndarray
    u_o: np.ndarray
    b_f: np.ndarray
    b_i: np.ndarray
    b_c: np.ndarray
    b_o: np.ndarray

    def __post_init__(self) -> None:
        hidden = self.u_f.shape[0]
        for name in ("u_f", "u_i", "u_c", "u_o"):
            mat = getattr(self, name)
            if mat.shape != (hidden, hidden):
                raise ShapeError(f"{name} must be ({hidden}, {hidden}), got {mat.shape}")
        input_size = self.w_f.shape[1]
        for name in ("w_f", "w_i", "w_c", "w_o"):
            mat = getattr(self, name)
            if mat.shape != (hidden, input_size):
                raise ShapeError(f"{name} must be ({hidden}, {input_size}), got {mat.shape}")
        for name in ("b_f", "b_i", "b_c", "b_o"):
            vec = getattr(self, name)
            if vec.shape != (hidden,):
                raise ShapeError(f"{name} must be ({hidden},), got {vec.shape}")

    @property
    def hidden_size(self) -> int:
        """Number of hidden units ``H``."""
        return self.u_f.shape[0]

    @property
    def input_size(self) -> int:
        """Width of the layer input ``x_t``."""
        return self.w_f.shape[1]

    def gate_w(self, gate: str) -> np.ndarray:
        """Input-projection matrix ``W_gate``."""
        return getattr(self, f"w_{gate}")

    def gate_u(self, gate: str) -> np.ndarray:
        """Recurrent matrix ``U_gate``."""
        return getattr(self, f"u_{gate}")

    def gate_b(self, gate: str) -> np.ndarray:
        """Bias vector ``b_gate``."""
        return getattr(self, f"b_{gate}")

    def united_w(self) -> np.ndarray:
        """Concatenated ``W_{f,i,c,o}`` of shape ``(4H, input_size)``."""
        return np.concatenate([self.gate_w(g) for g in GATE_ORDER], axis=0)

    def united_u(self) -> np.ndarray:
        """Concatenated ``U_{f,i,c,o}`` of shape ``(4H, H)``."""
        return np.concatenate([self.gate_u(g) for g in GATE_ORDER], axis=0)

    def united_b(self) -> np.ndarray:
        """Concatenated bias ``b_{f,i,c,o}`` of shape ``(4H,)``."""
        return np.concatenate([self.gate_b(g) for g in GATE_ORDER], axis=0)

    @classmethod
    def initialize(
        cls,
        hidden_size: int,
        input_size: int,
        init: WeightInitializer,
        recurrent_scale: float = 1.0,
        forget_bias: float = 1.0,
    ) -> "LSTMCellWeights":
        """Create freshly initialized weights.

        Uses Xavier for the input projections and scaled orthogonal matrices
        for the recurrent projections; the forget-gate bias follows the
        common positive-bias convention so fresh cells retain state.
        """
        return cls(
            w_f=init.xavier_uniform(hidden_size, input_size),
            w_i=init.xavier_uniform(hidden_size, input_size),
            w_c=init.xavier_uniform(hidden_size, input_size),
            w_o=init.xavier_uniform(hidden_size, input_size),
            u_f=init.orthogonal(hidden_size, hidden_size, gain=recurrent_scale),
            u_i=init.orthogonal(hidden_size, hidden_size, gain=recurrent_scale),
            u_c=init.orthogonal(hidden_size, hidden_size, gain=recurrent_scale),
            u_o=init.orthogonal(hidden_size, hidden_size, gain=recurrent_scale),
            b_f=init.bias(hidden_size, value=forget_bias),
            b_i=init.bias(hidden_size),
            b_c=init.bias(hidden_size),
            b_o=init.bias(hidden_size),
        )


@dataclass
class GateVectors:
    """Post-activation gate values of one cell step (diagnostics)."""

    f: np.ndarray
    i: np.ndarray
    g: np.ndarray  # tanh candidate from Eq. 3
    o: np.ndarray


@dataclass
class CellState:
    """The two outputs of one cell: hidden output ``h`` and cell state ``c``."""

    h: np.ndarray
    c: np.ndarray

    @classmethod
    def zeros(cls, hidden_size: int, batch: int | None = None) -> "CellState":
        """Initial (all-zero) state used at the start of every layer."""
        shape = (hidden_size,) if batch is None else (batch, hidden_size)
        return cls(h=np.zeros(shape), c=np.zeros(shape))


def input_projections(weights: LSTMCellWeights, x: np.ndarray) -> dict[str, np.ndarray]:
    """Compute the per-gate input projections ``W_gate @ x`` for all gates.

    This is the per-layer ``Sgemm(W_{f,i,c,o}, x)`` of Algorithm 1 step 2:
    the whole layer's inputs are known up front, so these terms are computed
    once and reused by every cell, by Algorithm 2 (which needs ``X'``), and
    by the breakpoint search.

    Args:
        weights: The layer's cell weights.
        x: Input of shape ``(E,)`` or ``(T, E)`` (one row per timestep).

    Returns:
        Mapping from gate name to projection of shape ``(H,)`` / ``(T, H)``.
    """
    x = np.asarray(x, dtype=np.float64)
    return {g: x @ weights.gate_w(g).T for g in GATE_ORDER}


def lstm_cell_step(
    weights: LSTMCellWeights,
    x_proj: dict[str, np.ndarray],
    state: CellState,
    skip_rows: np.ndarray | None = None,
    sigmoid_fn: Callable[[np.ndarray], np.ndarray] = sigmoid,
) -> tuple[CellState, GateVectors]:
    """Advance one LSTM cell by one timestep (Eq. 1-5).

    Args:
        weights: The layer's cell weights.
        x_proj: Pre-computed per-gate input projections for *this* timestep
            (single rows out of :func:`input_projections`).
        state: ``(h_{t-1}, c_{t-1})``.
        skip_rows: Optional boolean mask of shape ``(H,)``; ``True`` marks a
            trivial row skipped by DRS. Skipped rows contribute ``c_t = 0``
            and therefore ``h_t = 0`` (Section V-A). The output gate ``o_t``
            is always computed in full — DRS needs it to pick the rows.
        sigmoid_fn: Gate activation (swap in :func:`hard_sigmoid` to model
            frameworks that use the piecewise-linear approximation).

    Returns:
        The new :class:`CellState` and the :class:`GateVectors` diagnostics.
    """
    h_prev, c_prev = state.h, state.c

    o_pre = x_proj["o"] + h_prev @ weights.u_o.T + weights.b_o
    o = sigmoid_fn(o_pre)

    if skip_rows is None:
        keep = None
    else:
        skip_rows = np.asarray(skip_rows, dtype=bool)
        if skip_rows.shape != (weights.hidden_size,):
            raise ShapeError(
                f"skip_rows must be ({weights.hidden_size},), got {skip_rows.shape}"
            )
        keep = ~skip_rows

    if keep is None:
        f = sigmoid_fn(x_proj["f"] + h_prev @ weights.u_f.T + weights.b_f)
        i = sigmoid_fn(x_proj["i"] + h_prev @ weights.u_i.T + weights.b_i)
        g = tanh(x_proj["c"] + h_prev @ weights.u_c.T + weights.b_c)
        c = f * c_prev + i * g
    else:
        # Only the kept rows of U_f, U_i, U_c are loaded and multiplied;
        # skipped elements of c_t are approximated to zero (Section V-A).
        f = np.zeros_like(o)
        i = np.zeros_like(o)
        g = np.zeros_like(o)
        if np.any(keep):
            f_kept = sigmoid_fn(
                _rows(x_proj["f"], keep) + h_prev @ weights.u_f[keep].T + weights.b_f[keep]
            )
            i_kept = sigmoid_fn(
                _rows(x_proj["i"], keep) + h_prev @ weights.u_i[keep].T + weights.b_i[keep]
            )
            g_kept = tanh(
                _rows(x_proj["c"], keep) + h_prev @ weights.u_c[keep].T + weights.b_c[keep]
            )
            _set_rows(f, keep, f_kept)
            _set_rows(i, keep, i_kept)
            _set_rows(g, keep, g_kept)
        c = np.where(keep, f * c_prev + i * g, 0.0)

    h = o * tanh(c)
    return CellState(h=h, c=c), GateVectors(f=f, i=i, g=g, o=o)


def run_reference_cell_sequence(
    weights: LSTMCellWeights,
    xs: np.ndarray,
    initial: CellState | None = None,
    sigmoid_fn: Callable[[np.ndarray], np.ndarray] = sigmoid,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the exact (unoptimized) cell recurrence over a whole sequence.

    Args:
        weights: Layer weights.
        xs: Inputs of shape ``(T, E)``.
        initial: Optional initial state (defaults to zeros).

    Returns:
        ``(hs, cs)`` of shape ``(T, H)`` each — the per-timestep outputs.
    """
    xs = np.asarray(xs, dtype=np.float64)
    if xs.ndim != 2:
        raise ShapeError(f"xs must be 2-D (T, E), got shape {xs.shape}")
    proj = input_projections(weights, xs)
    state = initial if initial is not None else CellState.zeros(weights.hidden_size)
    hs = np.empty((xs.shape[0], weights.hidden_size))
    cs = np.empty_like(hs)
    for t in range(xs.shape[0]):
        step_proj = {g: proj[g][t] for g in GATE_ORDER}
        state, _ = lstm_cell_step(weights, step_proj, state, sigmoid_fn=sigmoid_fn)
        hs[t] = state.h
        cs[t] = state.c
    return hs, cs


def _rows(vec: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Select kept elements along the hidden axis for vectors or batches."""
    return vec[..., keep]


def _set_rows(dest: np.ndarray, keep: np.ndarray, values: np.ndarray) -> None:
    dest[..., keep] = values
