"""Neural-network substrate: a from-scratch numpy LSTM/GRU stack.

This subpackage provides everything the paper's PyTorch side provided —
cell math (Eq. 1-5), unrolled layers, multi-layer networks with embedding and
task heads, the zero-pruning baseline, and a calibrated model zoo standing in
for pre-trained checkpoints.
"""

from repro.nn.activations import (
    SENSITIVE_HI,
    SENSITIVE_LO,
    SENSITIVE_WIDTH,
    hard_sigmoid,
    sensitive_overlap,
    sigmoid,
    tanh,
)
from repro.nn.initializers import WeightInitializer
from repro.nn.lstm_cell import CellState, GateVectors, LSTMCellWeights, lstm_cell_step
from repro.nn.lstm_layer import LSTMLayer
from repro.nn.network import LSTMNetwork, NetworkOutput
from repro.nn.gru import GRUCellWeights, GRULayer, gru_cell_step
from repro.nn.pruning import ZeroPruningResult, zero_prune
from repro.nn.model_zoo import CalibrationProfile, build_calibrated_network

__all__ = [
    "SENSITIVE_HI",
    "SENSITIVE_LO",
    "SENSITIVE_WIDTH",
    "CalibrationProfile",
    "CellState",
    "GRUCellWeights",
    "GRULayer",
    "GateVectors",
    "LSTMCellWeights",
    "LSTMLayer",
    "LSTMNetwork",
    "NetworkOutput",
    "WeightInitializer",
    "ZeroPruningResult",
    "build_calibrated_network",
    "gru_cell_step",
    "hard_sigmoid",
    "lstm_cell_step",
    "sensitive_overlap",
    "sigmoid",
    "tanh",
    "zero_prune",
]
