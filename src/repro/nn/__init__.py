"""Neural-network substrate: a from-scratch numpy LSTM/GRU stack.

This subpackage provides everything the paper's PyTorch side provided —
cell math (Eq. 1-5), unrolled layers, multi-layer networks with embedding and
task heads, the zero-pruning baseline, and a calibrated model zoo standing in
for pre-trained checkpoints.
"""

from repro.nn.activations import (
    SENSITIVE_HI,
    SENSITIVE_LO,
    SENSITIVE_WIDTH,
    dhard_sigmoid,
    dsigmoid,
    dtanh,
    hard_sigmoid,
    sensitive_overlap,
    sigmoid,
    sigmoid_derivative_for,
    tanh,
)
from repro.nn.backprop import (
    Gradients,
    TrainingConfig,
    TrainingTape,
    analytic_saved_bytes,
    backward,
    measure_training_memory,
    network_parameters,
    softmax_cross_entropy,
    training_forward,
    training_step,
)
from repro.nn.calibrate import (
    Adam,
    DriftReport,
    DriftSpec,
    FineTuneResult,
    SGD,
    drift_network,
    drift_report,
    fine_tune,
    measure_gate_statistics,
    synthetic_drift_batch,
)
from repro.nn.initializers import WeightInitializer
from repro.nn.lstm_cell import CellState, GateVectors, LSTMCellWeights, lstm_cell_step
from repro.nn.lstm_layer import LSTMLayer
from repro.nn.network import LSTMNetwork, NetworkOutput
from repro.nn.gru import GRUCellWeights, GRULayer, gru_cell_step, gru_layer_backward
from repro.nn.pruning import ZeroPruningResult, zero_prune
from repro.nn.model_zoo import CalibrationProfile, build_calibrated_network

__all__ = [
    "SENSITIVE_HI",
    "SENSITIVE_LO",
    "SENSITIVE_WIDTH",
    "Adam",
    "CalibrationProfile",
    "CellState",
    "DriftReport",
    "DriftSpec",
    "FineTuneResult",
    "GRUCellWeights",
    "GRULayer",
    "GateVectors",
    "Gradients",
    "LSTMCellWeights",
    "LSTMLayer",
    "LSTMNetwork",
    "NetworkOutput",
    "SGD",
    "TrainingConfig",
    "TrainingTape",
    "WeightInitializer",
    "ZeroPruningResult",
    "analytic_saved_bytes",
    "backward",
    "build_calibrated_network",
    "dhard_sigmoid",
    "drift_network",
    "drift_report",
    "dsigmoid",
    "dtanh",
    "fine_tune",
    "gru_cell_step",
    "gru_layer_backward",
    "hard_sigmoid",
    "lstm_cell_step",
    "measure_gate_statistics",
    "measure_training_memory",
    "network_parameters",
    "sensitive_overlap",
    "sigmoid",
    "sigmoid_derivative_for",
    "softmax_cross_entropy",
    "synthetic_drift_batch",
    "tanh",
    "training_forward",
    "training_step",
    "zero_prune",
]
