"""The zero-pruning baseline of Fig. 16 (Han et al. [31]).

Zero-pruning erases individual near-zero weight elements. On a GPU the
surviving elements must be stored in a sparse format (values + column
indices + row pointers), so the *data-movement* saving is smaller than the
element count suggests, and the irregular per-row work causes branch
divergence — which is why the paper measures a *slowdown* for this scheme.

This module provides the numerical pruning (for accuracy evaluation) and the
storage-cost model (for the GPU simulator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Bytes per stored non-zero value (fp32).
VALUE_BYTES: int = 4
#: Bits per element for the occupancy bitmap (Deep-Compression-style
#: position encoding: one presence bit per original element).
BITMAP_BITS_PER_ELEMENT: int = 1
#: Bytes per row-pointer entry (32-bit).
ROW_PTR_BYTES: int = 4


@dataclass
class ZeroPruningResult:
    """Outcome of magnitude pruning one matrix.

    Attributes:
        pruned: The matrix with erased elements set to zero.
        mask: Boolean mask of *kept* elements.
        threshold: Magnitude threshold actually applied.
        dense_bytes: Storage of the original dense matrix.
        sparse_bytes: Bitmap-compressed storage of the pruned matrix
            (values + one presence bit per element + row pointers).
    """

    pruned: np.ndarray
    mask: np.ndarray
    threshold: float
    dense_bytes: int
    sparse_bytes: int

    @property
    def kept_fraction(self) -> float:
        """Fraction of elements surviving the prune."""
        return float(self.mask.mean())

    @property
    def data_movement_reduction(self) -> float:
        """Fractional reduction in bytes moved (CSR vs dense).

        Can be negative when pruning removes too few elements to amortize
        the index overhead.
        """
        return 1.0 - self.sparse_bytes / self.dense_bytes

    @property
    def compression_ratio(self) -> float:
        """Fraction of weight *elements* eliminated (Fig. 16a metric)."""
        return 1.0 - self.kept_fraction


def zero_prune(
    matrix: np.ndarray,
    prune_fraction: float | None = None,
    threshold: float | None = None,
    value_bytes: int = VALUE_BYTES,
) -> ZeroPruningResult:
    """Magnitude-prune a dense matrix.

    Exactly one of ``prune_fraction`` (erase the smallest fraction of
    elements) or ``threshold`` (erase ``|w| < threshold``) must be given.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ConfigurationError(f"zero_prune expects a 2-D matrix, got shape {matrix.shape}")
    if (prune_fraction is None) == (threshold is None):
        raise ConfigurationError("pass exactly one of prune_fraction or threshold")
    if prune_fraction is not None:
        if not 0.0 <= prune_fraction < 1.0:
            raise ConfigurationError(f"prune_fraction must be in [0, 1), got {prune_fraction}")
        if prune_fraction == 0.0:
            threshold = 0.0
        else:
            threshold = float(np.quantile(np.abs(matrix), prune_fraction))
    assert threshold is not None
    mask = np.abs(matrix) >= threshold if threshold > 0.0 else np.ones_like(matrix, dtype=bool)
    pruned = np.where(mask, matrix, 0.0)
    nnz = int(mask.sum())
    dense_bytes = matrix.size * value_bytes
    bitmap_bytes = (matrix.size * BITMAP_BITS_PER_ELEMENT + 7) // 8
    sparse_bytes = nnz * value_bytes + bitmap_bytes + (matrix.shape[0] + 1) * ROW_PTR_BYTES
    return ZeroPruningResult(
        pruned=pruned,
        mask=mask,
        threshold=float(threshold),
        dense_bytes=dense_bytes,
        sparse_bytes=sparse_bytes,
    )


def prune_cell_weights(weights, prune_fraction: float):
    """Zero-prune the recurrent matrices of an LSTM cell in place-free style.

    Returns a new :class:`~repro.nn.lstm_cell.LSTMCellWeights` with pruned
    ``U`` matrices plus the aggregate :class:`ZeroPruningResult` statistics
    for the united matrix (what the GPU kernel would actually stream).
    """
    from repro.nn.lstm_cell import LSTMCellWeights  # local import avoids a cycle

    united = weights.united_u()
    aggregate = zero_prune(united, prune_fraction=prune_fraction)
    kwargs = {}
    for gate in ("f", "i", "c", "o"):
        kwargs[f"w_{gate}"] = weights.gate_w(gate)
        kwargs[f"b_{gate}"] = weights.gate_b(gate)
        kwargs[f"u_{gate}"] = zero_prune(
            weights.gate_u(gate), threshold=aggregate.threshold
        ).pruned
    return LSTMCellWeights(**kwargs), aggregate
