"""One unrolled LSTM layer and its exact (reference) execution.

A layer owns one :class:`~repro.nn.lstm_cell.LSTMCellWeights` shared by all
unrolled cells (the sharing is exactly what makes the inter-cell weight
re-load problem of Section III-A possible). The reference execution here is
the numerical ground truth against which every optimized execution is scored
for agreement accuracy.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ShapeError
from repro.nn.activations import sigmoid
from repro.nn.lstm_cell import (
    CellState,
    LSTMCellWeights,
    run_reference_cell_sequence,
)
from repro.nn.initializers import WeightInitializer


class LSTMLayer:
    """An unrolled LSTM layer (a chain of cells sharing one weight set)."""

    def __init__(
        self,
        weights: LSTMCellWeights,
        sigmoid_fn: Callable[[np.ndarray], np.ndarray] = sigmoid,
    ) -> None:
        self.weights = weights
        self.sigmoid_fn = sigmoid_fn

    @property
    def hidden_size(self) -> int:
        """Number of hidden units ``H``."""
        return self.weights.hidden_size

    @property
    def input_size(self) -> int:
        """Width of the per-timestep input vector."""
        return self.weights.input_size

    @classmethod
    def create(
        cls,
        hidden_size: int,
        input_size: int,
        init: WeightInitializer,
        recurrent_scale: float = 1.0,
        forget_bias: float = 1.0,
    ) -> "LSTMLayer":
        """Build a layer with freshly initialized weights."""
        weights = LSTMCellWeights.initialize(
            hidden_size,
            input_size,
            init,
            recurrent_scale=recurrent_scale,
            forget_bias=forget_bias,
        )
        return cls(weights)

    def forward(
        self, xs: np.ndarray, initial: CellState | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact sequential execution over ``xs`` of shape ``(T, E)``.

        Returns ``(hs, cs)``, each of shape ``(T, H)``.
        """
        xs = np.asarray(xs, dtype=np.float64)
        if xs.ndim != 2 or xs.shape[1] != self.input_size:
            raise ShapeError(
                f"layer expects (T, {self.input_size}) inputs, got {xs.shape}"
            )
        return run_reference_cell_sequence(
            self.weights, xs, initial=initial, sigmoid_fn=self.sigmoid_fn
        )
