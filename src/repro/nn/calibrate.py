"""On-device calibration: fine-tune zoo models on synthetic drift.

The inference stack calibrates once and freezes: thresholds, breakpoints
and DRS skip ratios are all derived from the gate statistics of the zoo
weights at build time. Real deployments drift — input distributions move,
gates re-open, the frozen plan slowly mis-prices the weight traffic. This
module closes the loop: a small SGD/Adam fine-tuning pass (driven by the
memory-frugal BPTT of :mod:`repro.nn.backprop`) retrains a model toward a
*drifted teacher*, re-fingerprints the weights, and re-measures the gate
statistics the tuner and executor consume — demonstrating that breakpoint
placement and DRS skip ratios are live quantities, not constants.

Pieces:

* :class:`SGD` / :class:`Adam` — minimal in-place optimizers over the
  canonical parameter order of :func:`~repro.nn.backprop.
  network_parameters`.
* :func:`drift_network` — the synthetic drift model: a copy of the
  network whose output/forget-gate biases and input projections are
  shifted, the way retraining on moved data shifts trained gates.
* :func:`fine_tune` — the training loop (self-labelled: targets are the
  drifted teacher's own predictions, the zoo's task convention).
* :func:`measure_gate_statistics` / :func:`drift_report` — the measured
  consumer quantities: DRS skip fraction through the real executor path
  and breakpoint placement from the relevance analysis, before vs after.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.backprop import (
    Gradients,
    TrainingConfig,
    TrainingTape,
    backward,
    network_parameters,
    training_forward,
)
from repro.nn.network import LSTMNetwork

if TYPE_CHECKING:
    from repro.gpu.specs import GPUSpec

# repro.core / repro.gpu imports stay function-local below: repro.core
# itself imports repro.nn at package-init time, so importing the executor
# here would close an import cycle.

#: Optimizer registry for :func:`build_optimizer` / the CLI.
OPTIMIZERS: tuple[str, ...] = ("sgd", "adam")


class SGD:
    """Plain (optionally momentum) SGD updating parameters in place."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Apply one update; ``params[k] -= lr * (velocity or grad)``."""
        if len(params) != len(grads):
            raise ConfigurationError("parameter/gradient count mismatch")
        if self.momentum == 0.0:
            for p, g in zip(params, grads):
                p -= self.lr * g
            return
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v += g
            p -= self.lr * v


class Adam:
    """Adam with bias correction, updating parameters in place."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Apply one bias-corrected Adam update."""
        if len(params) != len(grads):
            raise ConfigurationError("parameter/gradient count mismatch")
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(g)
            p -= self.lr * (m / correction1) / (np.sqrt(v / correction2) + self.eps)


def build_optimizer(name: str, lr: float) -> "SGD | Adam":
    """Construct an optimizer by registry name (``sgd`` / ``adam``)."""
    if name == "sgd":
        return SGD(lr=lr)
    if name == "adam":
        return Adam(lr=lr)
    raise ConfigurationError(
        f"unknown optimizer {name!r} (choose from {', '.join(OPTIMIZERS)})"
    )


# ------------------------------------------------------------------- drift


@dataclass(frozen=True)
class DriftSpec:
    """Synthetic drift applied to a teacher copy of the network.

    The shifts target exactly the statistics the inference optimizations
    key on: ``output_bias_shift`` re-opens near-zero output gates (moving
    the DRS skip ratio), ``forget_bias_shift`` and ``recurrent_scale``
    move the reachable pre-activation ranges (moving relevance, hence
    breakpoint placement), ``input_scale`` shifts the saturation share.
    ``magnitude`` scales every shift jointly — the CLI's ``--drift`` knob.
    """

    output_bias_shift: float = 0.8
    forget_bias_shift: float = -0.3
    recurrent_scale: float = 1.1
    input_scale: float = 1.05
    magnitude: float = 1.0

    def scaled(self, value: float) -> float:
        """A shift scaled by the joint magnitude."""
        return value * self.magnitude


def drift_network(network: LSTMNetwork, spec: DriftSpec | None = None) -> LSTMNetwork:
    """A drifted deep copy of ``network`` (the synthetic-drift teacher)."""
    from repro.core.plan import invalidate_weight_fingerprints

    spec = spec if spec is not None else DriftSpec()
    drifted = copy.deepcopy(network)
    # The deepcopy clones any memoized per-layer digest along with the
    # weights; the mutations below would leave it stale.
    invalidate_weight_fingerprints(drifted)
    rec_scale = 1.0 + spec.scaled(spec.recurrent_scale - 1.0)
    in_scale = 1.0 + spec.scaled(spec.input_scale - 1.0)
    for layer in drifted.layers:
        weights = layer.weights
        weights.b_o += spec.scaled(spec.output_bias_shift)
        weights.b_f += spec.scaled(spec.forget_bias_shift)
        for name in ("u_f", "u_i", "u_c", "u_o"):
            getattr(weights, name)[...] *= rec_scale
        for name in ("w_f", "w_i", "w_c", "w_o"):
            getattr(weights, name)[...] *= in_scale
    return drifted


def synthetic_drift_batch(
    teacher: LSTMNetwork, num_sequences: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """A self-labelled drift batch: random tokens, teacher predictions.

    The zoo's task convention (ground truth = the exact network's own
    prediction) carries over: the drifted teacher defines the drifted
    task, and fine-tuning pulls the student's gate statistics toward it.
    """
    rng = np.random.default_rng(seed)
    tokens = rng.integers(
        0, teacher.vocab_size, size=(num_sequences, teacher.config.seq_length)
    )
    tape = training_forward(teacher, tokens, TrainingConfig(policy="recompute"))
    labels = np.argmax(tape.logits, axis=-1)
    return tokens, labels


# --------------------------------------------------------------- fine-tune


@dataclass
class FineTuneResult:
    """Outcome of one fine-tuning run (the network is updated in place)."""

    losses: list[float]
    fingerprint_before: str
    fingerprint_after: str
    wall_s: float
    config: TrainingConfig
    final_tape: TrainingTape | None = None

    @property
    def steps(self) -> int:
        """Number of optimizer steps taken."""
        return len(self.losses)

    @property
    def weights_changed(self) -> bool:
        """Whether training actually moved the weights (fingerprints)."""
        return self.fingerprint_before != self.fingerprint_after


def fine_tune(
    network: LSTMNetwork,
    tokens: np.ndarray,
    labels: np.ndarray,
    steps: int = 8,
    optimizer: "SGD | Adam | str" = "adam",
    lr: float = 1e-2,
    config: TrainingConfig | None = None,
    keep_final_tape: bool = False,
) -> FineTuneResult:
    """Fine-tune ``network`` in place on one labelled batch.

    Args:
        network: The student (updated in place; fingerprint re-derived).
        tokens: ``(B, T)`` token batch.
        labels: Targets — ``(B,)`` or ``(B, T)`` matching the head.
        steps: Full-batch optimizer steps.
        optimizer: Instance or registry name (``lr`` applies to names).
        config: Saved-tensor policy / truncation for the BPTT pass.
        keep_final_tape: Retain the last step's tape on the result (for
            memory reporting) instead of dropping it.
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be positive, got {steps}")
    from repro.core.plan import fingerprint_network, invalidate_weight_fingerprints

    config = config if config is not None else TrainingConfig()
    if isinstance(optimizer, str):
        optimizer = build_optimizer(optimizer, lr)
    params = network_parameters(network)
    fingerprint_before = fingerprint_network(network)
    losses: list[float] = []
    final_tape: TrainingTape | None = None
    start = time.perf_counter()
    for step_index in range(steps):
        tape = training_forward(network, tokens, config)
        loss, grads = backward(tape, labels)
        optimizer.step(params, grads.arrays())
        losses.append(loss)
        if keep_final_tape and step_index == steps - 1:
            final_tape = tape
    wall_s = time.perf_counter() - start
    # The optimizer rewrote the layer weights in place; drop the memoized
    # digests so the re-fingerprint below hashes the new content.
    invalidate_weight_fingerprints(network)
    return FineTuneResult(
        losses=losses,
        fingerprint_before=fingerprint_before,
        fingerprint_after=fingerprint_network(network),
        wall_s=wall_s,
        config=config,
        final_tape=final_tape,
    )


# ------------------------------------------------------ measured statistics


@dataclass
class GateStatistics:
    """The consumer-side quantities the inference stack derives from the
    gate statistics of one weight set, measured on one token batch."""

    skip_fraction: float
    breakpoints: list[tuple[int, ...]] = field(default_factory=list)
    num_breakpoints: int = 0
    relevance_mean: float = 0.0

    def as_dict(self) -> dict:
        """JSON-friendly form (breakpoint tuples become lists)."""
        return {
            "skip_fraction": self.skip_fraction,
            "num_breakpoints": self.num_breakpoints,
            "relevance_mean": self.relevance_mean,
            "breakpoints": [list(b) for b in self.breakpoints],
        }


def measure_gate_statistics(
    network: LSTMNetwork,
    tokens: np.ndarray,
    alpha_inter: float,
    alpha_intra: float,
    spec: "GPUSpec | None" = None,
) -> GateStatistics:
    """Measure DRS skip ratio and breakpoint placement on a token batch.

    The skip fraction runs through the *real* executor INTRA path (the
    quantity that prices DRS weight-traffic savings); breakpoints come
    from the relevance analysis thresholded at ``alpha_inter`` (the
    quantity that shapes tissues). Holding ``tokens`` and both thresholds
    fixed makes two calls comparable: any difference is attributable to
    the weights alone.
    """
    from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
    from repro.core.tuner import collect_relevance_samples
    from repro.gpu.specs import TEGRA_X1

    if spec is None:
        spec = TEGRA_X1
    executor = LSTMExecutor(
        network,
        ExecutionConfig(mode=ExecutionMode.INTRA, alpha_intra=alpha_intra, spec=spec),
    )
    result = executor.run_batch(np.asarray(tokens))
    skip = float(np.mean([plan.mean_skip_fraction for plan in result.plans]))

    samples = collect_relevance_samples(network, tokens, spec=spec)
    breakpoints = [
        tuple(int(t) for t in np.flatnonzero(s < alpha_inter) if t >= 1)
        for s in samples
    ]
    return GateStatistics(
        skip_fraction=skip,
        breakpoints=breakpoints,
        num_breakpoints=int(sum(len(b) for b in breakpoints)),
        relevance_mean=float(np.mean([s.mean() for s in samples])),
    )


@dataclass
class DriftReport:
    """Before/after gate statistics of one fine-tuning run."""

    before: GateStatistics
    after: GateStatistics

    @property
    def skip_fraction_delta(self) -> float:
        """Signed DRS skip-ratio movement (after - before)."""
        return self.after.skip_fraction - self.before.skip_fraction

    @property
    def breakpoints_moved(self) -> int:
        """Breakpoint placements that changed (symmetric difference over
        every (sequence, layer) relevance sample)."""
        moved = 0
        for b_before, b_after in zip(self.before.breakpoints, self.after.breakpoints):
            moved += len(set(b_before) ^ set(b_after))
        return moved

    @property
    def shifted(self) -> bool:
        """Whether the measured consumer quantities moved at all."""
        return self.skip_fraction_delta != 0.0 or self.breakpoints_moved > 0

    def as_dict(self) -> dict:
        """JSON-friendly summary for bench reports."""
        return {
            "skip_fraction_before": self.before.skip_fraction,
            "skip_fraction_after": self.after.skip_fraction,
            "skip_fraction_delta": self.skip_fraction_delta,
            "num_breakpoints_before": self.before.num_breakpoints,
            "num_breakpoints_after": self.after.num_breakpoints,
            "breakpoints_moved": self.breakpoints_moved,
            "relevance_mean_before": self.before.relevance_mean,
            "relevance_mean_after": self.after.relevance_mean,
            "shifted": self.shifted,
        }


def drift_report(
    before_network: LSTMNetwork,
    after_network: LSTMNetwork,
    tokens: np.ndarray,
    alpha_inter: float,
    alpha_intra: float,
    spec: "GPUSpec | None" = None,
) -> DriftReport:
    """Measure both weight sets on the same batch and same thresholds."""
    return DriftReport(
        before=measure_gate_statistics(
            before_network, tokens, alpha_inter, alpha_intra, spec=spec
        ),
        after=measure_gate_statistics(
            after_network, tokens, alpha_inter, alpha_intra, spec=spec
        ),
    )
