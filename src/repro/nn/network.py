"""Multi-layer LSTM networks with embedding and task heads.

This is the model class the Table II applications instantiate. It supports
the two output conventions the paper's task families need:

* *sequence-final* heads (classification: SC / QA / ET) read the last
  hidden vector of the top layer;
* *per-timestep* heads (LM / MT) read every hidden vector of the top layer.

The network deliberately exposes its internals (``embedding``, ``layers``,
``head``) because the optimized executor replaces the layer recurrence while
reusing the embedding and head verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import LSTMConfig
from repro.errors import ConfigurationError, ShapeError
from repro.nn.initializers import WeightInitializer
from repro.nn.lstm_layer import LSTMLayer


@dataclass
class NetworkOutput:
    """Result of one forward pass.

    Attributes:
        logits: ``(num_classes,)`` for sequence-final heads or
            ``(T, num_classes)`` for per-timestep heads.
        layer_outputs: Per-layer hidden sequences, each ``(T, H)``.
        layer_states: Per-layer cell-state sequences, each ``(T, H)``.
    """

    logits: np.ndarray
    layer_outputs: list[np.ndarray]
    layer_states: list[np.ndarray]

    def prediction(self) -> np.ndarray:
        """Argmax prediction: scalar for final heads, ``(T,)`` otherwise."""
        return np.argmax(self.logits, axis=-1)


class LSTMNetwork:
    """Embedding -> stacked LSTM layers -> linear head."""

    def __init__(
        self,
        config: LSTMConfig,
        vocab_size: int,
        num_classes: int,
        seed: int = 0,
        per_timestep_head: bool = False,
        head_pool: int = 1,
        recurrent_scale: float = 1.0,
    ) -> None:
        if vocab_size <= 1:
            raise ConfigurationError(f"vocab_size must exceed 1, got {vocab_size}")
        if num_classes <= 1:
            raise ConfigurationError(f"num_classes must exceed 1, got {num_classes}")
        if head_pool < 1 or head_pool > config.seq_length:
            raise ConfigurationError(
                f"head_pool must be in [1, seq_length], got {head_pool}"
            )
        self.config = config
        self.vocab_size = vocab_size
        self.num_classes = num_classes
        self.per_timestep_head = per_timestep_head
        #: Sequence-final heads read the mean of the last ``head_pool``
        #: hidden vectors (temporal mean pooling, standard in sequence
        #: classifiers); 1 reproduces plain last-state readout.
        self.head_pool = head_pool

        init = WeightInitializer(seed)
        embed_dim = config.effective_input_size
        self.embedding = init.normal(vocab_size, embed_dim, std=0.3)
        self.layers: list[LSTMLayer] = [
            LSTMLayer.create(
                config.hidden_size,
                config.layer_input_size(idx),
                init,
                recurrent_scale=recurrent_scale,
            )
            for idx in range(config.num_layers)
        ]
        self.head_weight = init.xavier_uniform(num_classes, config.hidden_size)
        self.head_bias = init.bias(num_classes)

    @property
    def num_layers(self) -> int:
        """Number of stacked LSTM layers."""
        return len(self.layers)

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Look up token embeddings; returns ``(T, E)``."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 1:
            raise ShapeError(f"tokens must be 1-D, got shape {tokens.shape}")
        if tokens.min(initial=0) < 0 or tokens.max(initial=0) >= self.vocab_size:
            raise ShapeError("token id out of vocabulary range")
        return self.embedding[tokens]

    def head_logits(self, hidden: np.ndarray) -> np.ndarray:
        """Apply the linear head to ``(H,)`` or ``(T, H)`` hidden vectors."""
        return hidden @ self.head_weight.T + self.head_bias

    def pool_top(self, top: np.ndarray) -> np.ndarray:
        """Readout vector(s) for a sequence-final head.

        Args:
            top: Top-layer hidden sequence, ``(T, H)`` or ``(B, T, H)``.
        Returns:
            ``(H,)`` / ``(B, H)``: the mean of the last ``head_pool`` steps.
        """
        return top[..., -self.head_pool:, :].mean(axis=-2)

    def forward(self, tokens: np.ndarray) -> NetworkOutput:
        """Exact forward pass (the paper's baseline numerics)."""
        xs = self.embed(tokens)
        layer_outputs: list[np.ndarray] = []
        layer_states: list[np.ndarray] = []
        for layer in self.layers:
            xs, cs = layer.forward(xs)
            layer_outputs.append(xs)
            layer_states.append(cs)
        top = layer_outputs[-1]
        logits = self.head_logits(top if self.per_timestep_head else self.pool_top(top))
        return NetworkOutput(
            logits=logits, layer_outputs=layer_outputs, layer_states=layer_states
        )
