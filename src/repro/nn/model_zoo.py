"""Calibrated synthetic "pre-trained" models (the paper's checkpoint stand-in).

The paper evaluates on six NLP applications with trained PyTorch models. We
have no network access, so this module generates weights whose *gate
statistics* match what the paper's optimizations rely on in trained LSTMs:

* **Saturated pre-activations.** Trained LSTMs drive many gate
  pre-activations deep into the sigmoid/tanh insensitive area ``|x| > 2``
  (this is exactly the observation of Section IV-A). The zoo controls the
  spread of the input projections ``W x_t`` per layer so a tunable share of
  pre-activations saturates — the source of weak context links.
* **Compact recurrent rows.** The relevance bound of Algorithm 2 uses the
  row-wise L1 norms ``D = sum|U|``; trained recurrent matrices concentrate
  mass in few significant entries per row. The zoo draws sparse rows with a
  target L1 norm.
* **Saturating output gates.** DRS skips rows whose ``o_t`` element is near
  zero; trained output gates are strongly bimodal. The zoo biases ``b_o``
  negative with spread so a realistic (~50 %) share of output-gate elements
  is near zero — the paper's measured average row-compression is 50.35 %.
* **Layer-depth decay.** Earlier layers see raw embeddings with larger
  dynamic range than the bounded ``h`` sequences upper layers see, which is
  why Fig. 15 finds earlier layers easier to divide. The zoo scales the
  input-projection spread down with depth.

The *tasks* are self-labelled: ground truth for accuracy evaluation is the
prediction of the exact network itself (see ``repro.workloads.metrics``), so
calibrated weights define a perfectly consistent task with 100 % baseline
accuracy, and every measured accuracy loss is attributable to the
approximations — the same Δ-accuracy the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config import AppConfig, LSTMConfig
from repro.errors import ConfigurationError
from repro.nn.lstm_cell import GATE_ORDER, LSTMCellWeights
from repro.nn.network import LSTMNetwork


@dataclass(frozen=True)
class CalibrationProfile:
    """Statistical targets for synthetic trained-LSTM weights.

    Attributes:
        input_preact_std: Target standard deviation of the layer-0 input
            projections ``W_g x_t`` (all gates). Larger values push more
            pre-activations into the insensitive area, weakening links.
        layer_decay: Multiplier applied to ``input_preact_std`` per layer of
            depth (deeper layers see tamer inputs -> stronger links).
        recurrent_row_l1: Target row-wise L1 norm of the recurrent matrices
            (Algorithm 2's ``D``); small values tighten the reachable range
            of ``U h_{t-1}``.
        recurrent_density: Fraction of significant entries per recurrent row.
        forget_bias_mean / forget_bias_std: Forget-gate bias distribution
            of the ordinary (short-horizon) hidden dimensions.
        forget_memory_fraction / forget_memory_bias / forget_memory_spread:
            A share of hidden dimensions acts as *persistent memory* —
            forget bias strongly positive, so their state survives whole
            clauses. These dimensions are what breaking a *strong* context
            link destroys (bounding how far ``alpha_inter`` can push before
            accuracy pays); boundary tokens still close them via the
            stronger ``boundary_gamma_f`` shift.
        forget_gate_preact_std: Input-projection spread of the forget gate
            (smaller than the other gates': trained forget gates are
            bias-dominated and temporally stable).
        output_gate_preact_std: Input-projection spread of the *output*
            gate specifically. Trained output gates specialize per hidden
            dimension and stay stable across timesteps; a spread smaller
            than the other gates' keeps the near-zero set temporally
            coherent, which is what lets DRS zero a state element without
            the gate re-opening onto the destroyed value a step later.
        output_closed_fraction / output_closed_bias / output_closed_spread /
        output_open_bias / output_open_spread: The output-gate bias is a
            two-mode mixture — trained output gates are bimodal: a share of
            hidden dimensions is firmly gated off (``o ~ 0.01``, skipping
            them is nearly free — the paper's ~50 % row compression at
            negligible loss) while the rest are clearly open; the thin
            middle is what the ``alpha_intra`` sweep gradually eats into.
        embedding_std: Standard deviation of embedding entries.
        boundary_rate: Share of the vocabulary acting as *boundary tokens*
            (hard topic shifts: sentence/paragraph boundaries the model
            treats as resets). Trained LSTMs learn to close their forget
            and output gates across the whole state at such tokens — the
            correlated reset that creates the paper's genuinely weak
            context links; without it, per-element forgetting is
            uncorrelated and no link is weak. The rate is deliberately
            low (roughly one reset per few dozen tokens): the supply of
            free breakpoints is what separates the paper's ~2x inter-cell
            gains from the theoretical ceiling of full MTS parallelism.
        boundary_gamma_f / boundary_gamma_o / boundary_gamma_i: Strength of
            the gate closures a boundary token triggers (pre-activation
            shifts on the forget, output, and input gates). The forget
            closure is deliberately *partial* for the persistent-memory
            dimensions: real clause boundaries drop syntactic state but
            carry topic context across, so breaking a boundary link is
            cheap — not free — and the accuracy budget still binds the
            threshold somewhere.
    """

    input_preact_std: float = 2.2
    output_gate_preact_std: float = 0.9
    forget_gate_preact_std: float = 1.2
    layer_decay: float = 0.85
    recurrent_row_l1: float = 2.0
    recurrent_density: float = 0.08
    forget_bias_mean: float = 0.2
    forget_bias_std: float = 0.9
    forget_memory_fraction: float = 0.25
    forget_memory_bias: float = 2.3
    forget_memory_spread: float = 0.5
    output_closed_fraction: float = 0.52
    output_closed_bias: float = -5.0
    output_closed_spread: float = 0.6
    output_open_bias: float = -0.4
    output_open_spread: float = 0.8
    embedding_std: float = 0.3
    boundary_rate: float = 0.015
    boundary_gamma_f: float = 3.2
    boundary_gamma_o: float = 3.5
    boundary_gamma_i: float = 2.5

    def __post_init__(self) -> None:
        if self.input_preact_std <= 0:
            raise ConfigurationError("input_preact_std must be positive")
        if not 0 < self.layer_decay <= 1.5:
            raise ConfigurationError("layer_decay must be in (0, 1.5]")
        if self.recurrent_row_l1 <= 0:
            raise ConfigurationError("recurrent_row_l1 must be positive")
        if not 0 < self.recurrent_density <= 1:
            raise ConfigurationError("recurrent_density must be in (0, 1]")
        if self.embedding_std <= 0:
            raise ConfigurationError("embedding_std must be positive")


#: Default profile, shared by all applications.
DEFAULT_PROFILE = CalibrationProfile()

#: Per-application overrides. The paper's apps differ in how "divisible"
#: their layers are; these mild statistical differences (on top of the
#: geometry differences of Table II) reproduce the per-app spread of
#: Fig. 14 / Fig. 19.
APP_PROFILES: dict[str, CalibrationProfile] = {
    "IMDB": replace(DEFAULT_PROFILE, input_preact_std=2.3),
    "MR": replace(DEFAULT_PROFILE, input_preact_std=2.0, recurrent_row_l1=2.2),
    "BABI": replace(DEFAULT_PROFILE, input_preact_std=2.4, recurrent_row_l1=1.8),
    "SNLI": replace(DEFAULT_PROFILE, input_preact_std=2.1),
    "PTB": replace(DEFAULT_PROFILE, input_preact_std=2.5, recurrent_row_l1=1.8),
    "MT": replace(DEFAULT_PROFILE, input_preact_std=2.2),
}


def profile_for_app(app_name: str) -> CalibrationProfile:
    """Return the calibration profile for a Table II application."""
    return APP_PROFILES.get(app_name.upper(), DEFAULT_PROFILE)


def _sparse_recurrent_matrix(
    rng: np.random.Generator, hidden: int, profile: CalibrationProfile
) -> np.ndarray:
    """Draw a recurrent matrix with target row L1 norms.

    Each row has ``density * hidden`` significant entries (at least one)
    drawn from a Gaussian scaled so the expected row L1 norm equals
    ``recurrent_row_l1``; a small dense background models the residual
    near-zero weights of a trained matrix.
    """
    per_row = max(1, int(round(profile.recurrent_density * hidden)))
    # E|N(0, s)| = s * sqrt(2/pi); solve per-entry scale for the L1 target.
    scale = profile.recurrent_row_l1 / (per_row * np.sqrt(2.0 / np.pi))
    matrix = rng.normal(0.0, scale * 0.02, size=(hidden, hidden))  # background
    for row in range(hidden):
        cols = rng.choice(hidden, size=per_row, replace=False)
        matrix[row, cols] = rng.normal(0.0, scale, size=per_row)
    return matrix


def _input_matrix(
    rng: np.random.Generator,
    hidden: int,
    input_size: int,
    preact_std: float,
    input_rms: float,
) -> np.ndarray:
    """Draw ``W_g`` so that ``std(W_g x) ~= preact_std`` for inputs whose
    elementwise RMS is ``input_rms``."""
    entry_std = preact_std / (input_rms * np.sqrt(input_size))
    return rng.normal(0.0, entry_std, size=(hidden, input_size))


#: Boundary-channel output level: ``h = sigmoid(3) * tanh(sigmoid(3) * tanh(2.5))``.
_BOUNDARY_CHANNEL_LEVEL: float = 0.66

#: Per-layer decay of the boundary gate closures (deeper layers keep more
#: cross-boundary context — see :func:`_install_boundary_structure`).
_BOUNDARY_DEPTH_DECAY: float = 0.93


def _calibrated_cell(
    rng: np.random.Generator,
    hidden: int,
    input_size: int,
    profile: CalibrationProfile,
    layer_index: int,
    input_rms: float,
) -> LSTMCellWeights:
    decay = profile.layer_decay**layer_index
    kwargs = {}
    gate_preact_std = {
        "o": profile.output_gate_preact_std,
        "f": profile.forget_gate_preact_std,
        "i": profile.input_preact_std,
        "c": profile.input_preact_std,
    }
    for gate in GATE_ORDER:
        target = gate_preact_std[gate]
        kwargs[f"w_{gate}"] = _input_matrix(rng, hidden, input_size, target * decay, input_rms)
        kwargs[f"u_{gate}"] = _sparse_recurrent_matrix(rng, hidden, profile)
    memory_dims = rng.random(hidden) < profile.forget_memory_fraction
    kwargs["b_f"] = np.where(
        memory_dims,
        rng.normal(profile.forget_memory_bias, profile.forget_memory_spread, size=hidden),
        rng.normal(profile.forget_bias_mean, profile.forget_bias_std, size=hidden),
    )
    # Memory dimensions are write-gated: their input gate stays mostly
    # closed and opens only on strong input evidence (the sparse-write
    # behaviour of trained LSTM memory cells). This is what keeps the
    # per-step perturbation noise of the approximations from integrating
    # into the persistent state over long sequences.
    kwargs["b_i"] = np.where(
        memory_dims,
        rng.normal(-2.5, 0.5, size=hidden),
        rng.normal(0.0, 1.0, size=hidden),
    )
    kwargs["b_c"] = rng.normal(0.0, 0.8, size=hidden)
    # Closed output gates correlate with short-horizon dimensions: a
    # trained network gains nothing from long-range state it never outputs,
    # so persistent-memory dimensions keep their gates (mostly) open. The
    # per-group probabilities preserve the overall closed fraction.
    mem_frac = float(memory_dims.mean())
    closed_if_memory = 0.30
    denom = max(1.0 - mem_frac, 1e-9)
    closed_if_normal = np.clip(
        (profile.output_closed_fraction - mem_frac * closed_if_memory) / denom, 0.0, 1.0
    )
    p_closed = np.where(memory_dims, closed_if_memory, closed_if_normal)
    closed = rng.random(hidden) < p_closed
    kwargs["b_o"] = np.where(
        closed,
        rng.normal(profile.output_closed_bias, profile.output_closed_spread, size=hidden),
        rng.normal(profile.output_open_bias, profile.output_open_spread, size=hidden),
    )
    _install_boundary_structure(rng, kwargs, hidden, input_size, profile, layer_index)
    return LSTMCellWeights(**kwargs)


def _install_boundary_structure(
    rng: np.random.Generator,
    kwargs: dict[str, np.ndarray],
    hidden: int,
    input_size: int,
    profile: CalibrationProfile,
    layer_index: int,
) -> None:
    """Wire the correlated-reset behaviour of trained LSTMs.

    The last *input* coordinate is the boundary feature (the flag column of
    the embedding for layer 0, the boundary channel of the previous layer
    above); the last *hidden* dimension is this layer's boundary channel,
    which regenerates the flag for the next layer up.

    At a boundary token the forget/output/input gates of every element are
    pushed strongly negative — the whole cell state is dropped and the
    output squelched, exactly the state in which Algorithm 2's relevance
    value collapses and a context link can be broken for free.
    """
    if profile.boundary_rate <= 0.0:
        return
    bc = input_size - 1
    # Layer 0 reads the raw flag (level 1.0); upper layers read the previous
    # layer's channel, which tops out at _BOUNDARY_CHANNEL_LEVEL.
    level = 1.0 if layer_index == 0 else _BOUNDARY_CHANNEL_LEVEL
    # Deeper layers track longer-horizon (discourse-level) context that
    # survives clause boundaries, so their boundary closure weakens with
    # depth — this is what makes the earlier layers easier to divide
    # (the paper's Fig. 15 observation).
    depth = _BOUNDARY_DEPTH_DECAY**layer_index
    for gate, gamma in (
        ("f", profile.boundary_gamma_f),
        ("o", profile.boundary_gamma_o),
        ("i", profile.boundary_gamma_i),
    ):
        kwargs[f"w_{gate}"][:, bc] = (
            -(gamma * depth / level) * rng.uniform(0.85, 1.15, size=hidden)
        )

    # The boundary channel: no memory (f closed), always writing (i, o
    # open), candidate driven purely by the boundary feature.
    ch = hidden - 1
    for gate in GATE_ORDER:
        kwargs[f"w_{gate}"][ch, :] = 0.0
        kwargs[f"u_{gate}"][ch, :] = 0.0
    kwargs["w_c"][ch, bc] = 2.5 / level
    kwargs["b_f"][ch] = -4.0
    kwargs["b_i"][ch] = 3.0
    kwargs["b_o"][ch] = 3.0
    kwargs["b_c"][ch] = 0.0


def build_calibrated_network(
    app: AppConfig | None = None,
    config: LSTMConfig | None = None,
    vocab_size: int | None = None,
    num_classes: int | None = None,
    seed: int = 0,
    profile: CalibrationProfile | None = None,
    per_timestep_head: bool | None = None,
) -> LSTMNetwork:
    """Build a network with calibrated synthetic "trained" weights.

    Either pass a Table II :class:`~repro.config.AppConfig` (geometry, vocab
    and head are taken from it) or an explicit ``config``/``vocab_size``/
    ``num_classes`` triple (used by the Fig. 17 capacity sweeps).
    """
    from repro.config import TaskFamily  # local import: config import cycle safety

    if app is not None:
        config = app.model if config is None else config
        vocab_size = app.vocab_size if vocab_size is None else vocab_size
        num_classes = app.num_classes if num_classes is None else num_classes
        if profile is None:
            profile = profile_for_app(app.name)
        if per_timestep_head is None:
            per_timestep_head = app.family in (
                TaskFamily.LANGUAGE_MODELING,
                TaskFamily.MACHINE_TRANSLATION,
            )
    if config is None or vocab_size is None or num_classes is None:
        raise ConfigurationError(
            "pass either an AppConfig or all of config/vocab_size/num_classes"
        )
    profile = profile or DEFAULT_PROFILE
    per_timestep_head = bool(per_timestep_head)

    # Sequence classifiers pool the final quarter of the hidden sequence —
    # the standard trained-model readout, and the mechanism that makes the
    # (zero-mean) predicted-link errors average out the way they do on the
    # paper's trained checkpoints.
    head_pool = 1 if per_timestep_head else max(1, config.seq_length // 4)
    network = LSTMNetwork(
        config,
        vocab_size,
        num_classes,
        seed=seed,
        per_timestep_head=per_timestep_head,
        head_pool=head_pool,
    )
    rng = np.random.default_rng(seed + 0xC0FFEE)
    network.embedding = rng.normal(
        0.0, profile.embedding_std, size=network.embedding.shape
    )
    # Boundary tokens: a vocabulary share acting as clause separators. The
    # last embedding coordinate is their flag (read by the layer-0 gate
    # closures installed below).
    if profile.boundary_rate > 0.0:
        num_boundary = max(1, int(round(profile.boundary_rate * vocab_size)))
        boundary_ids = rng.choice(vocab_size, size=num_boundary, replace=False)
        network.embedding[:, -1] = rng.normal(0.0, 0.02, size=vocab_size)
        network.embedding[boundary_ids, -1] = 1.0
        network.boundary_token_ids = np.sort(boundary_ids)
    else:
        network.boundary_token_ids = np.empty(0, dtype=int)
    for layer_index, layer in enumerate(network.layers):
        # Layer 0 reads embeddings (RMS = embedding_std); upper layers read
        # bounded hidden sequences whose RMS is empirically ~0.3 for
        # calibrated cells.
        input_rms = profile.embedding_std if layer_index == 0 else 0.3
        layer.weights = _calibrated_cell(
            rng,
            config.hidden_size,
            config.layer_input_size(layer_index),
            profile,
            layer_index,
            input_rms,
        )
    _informativeness_scale_head(network, rng)
    return network


def _informativeness_scale_head(network: LSTMNetwork, rng: np.random.Generator) -> None:
    """Scale head columns by each hidden dimension's typical magnitude.

    Training concentrates head weight on the hidden dimensions that
    actually vary; dimensions whose output gate is almost always closed
    (``|h_j|`` tiny) end up with near-zero head weight. A uniformly random
    head would instead let those dimensions contribute full-strength logit
    noise, making the DRS approximation (which zeroes exactly those
    dimensions) look far more destructive than on a trained model. We
    reproduce the trained behaviour by scaling head column ``j`` with the
    RMS of ``h_j`` measured on a probe batch, renormalized to preserve the
    overall logit scale.
    """
    probe = rng.integers(0, network.vocab_size, size=(4, network.config.seq_length))
    hs = []
    for row in probe:
        hs.append(network.forward(row).layer_outputs[-1])
    stacked = np.concatenate(hs, axis=0)
    rms = np.sqrt((stacked**2).mean(axis=0))
    scale = rms / max(float(rms.mean()), 1e-12)
    network.head_weight = network.head_weight * scale[None, :]
