"""Seeded weight initializers for the from-scratch network stack.

Every initializer is a method on :class:`WeightInitializer`, which wraps a
``numpy.random.Generator`` so that model construction is fully reproducible
from a single integer seed — a requirement for the agreement-accuracy
methodology (the exact and approximated networks must share weights).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class WeightInitializer:
    """Factory for reproducible weight tensors.

    Args:
        seed: Seed for the underlying PCG64 generator.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The underlying generator (exposed for dataset builders)."""
        return self._rng

    def xavier_uniform(self, rows: int, cols: int, gain: float = 1.0) -> np.ndarray:
        """Glorot/Xavier uniform initialization for dense matrices."""
        _check_shape(rows, cols)
        limit = gain * np.sqrt(6.0 / (rows + cols))
        return self._rng.uniform(-limit, limit, size=(rows, cols))

    def orthogonal(self, rows: int, cols: int, gain: float = 1.0) -> np.ndarray:
        """Orthogonal initialization — the standard choice for recurrent
        matrices because it preserves activation norms across timesteps."""
        _check_shape(rows, cols)
        flat = self._rng.normal(size=(max(rows, cols), min(rows, cols)))
        q, r = np.linalg.qr(flat)
        # Sign correction makes the decomposition unique and the draw unbiased.
        q *= np.sign(np.diag(r))
        if rows < cols:
            q = q.T
        return gain * q[:rows, :cols]

    def normal(self, rows: int, cols: int, std: float = 0.1) -> np.ndarray:
        """Plain Gaussian initialization."""
        _check_shape(rows, cols)
        return self._rng.normal(0.0, std, size=(rows, cols))

    def bias(self, size: int, value: float = 0.0, jitter: float = 0.0) -> np.ndarray:
        """Bias vector with optional Gaussian jitter around ``value``.

        Trained LSTM biases are not exactly constant; the jitter models the
        spread observed after training (used by the model zoo).
        """
        if size <= 0:
            raise ConfigurationError(f"bias size must be positive, got {size}")
        base = np.full(size, float(value))
        if jitter > 0.0:
            base += self._rng.normal(0.0, jitter, size=size)
        return base


def _check_shape(rows: int, cols: int) -> None:
    if rows <= 0 or cols <= 0:
        raise ConfigurationError(f"matrix shape must be positive, got ({rows}, {cols})")
