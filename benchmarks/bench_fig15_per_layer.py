"""Fig. 15 — per-layer inter-cell gains.

Paper shape: earlier layers (closer to the raw text) have more distinct
context links, divide into more sub-layers, and therefore gain more than
the later layers.

Reproduction status: the trend holds for IMDB, SNLI and PTB; for MT and
BABI our synthetic deep layers develop a low-relevance tail of their own
(the per-layer S scales drift with depth in the calibrated models), so
their deepest layer can out-divide the first. The robust, asserted claims
are: no layer is harmed, the first layers clearly gain on average, and the
majority of apps put their best layer in the earlier half. See
EXPERIMENTS.md for the honest comparison.
"""

import numpy as np
import pytest

from repro.bench.harness import fig15_per_layer


def test_fig15_per_layer(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        fig15_per_layer, args=(ctx,), rounds=1, iterations=1
    )
    record_report("fig15_per_layer", report)
    if not data:
        pytest.skip("no multi-layer application in the restricted app set")

    firsts = []
    for name, layers in data.items():
        # The optimization never slows a layer down materially.
        assert all(entry["speedup"] > 0.9 for entry in layers), name
        firsts.append(layers[0]["speedup"])
    # First layers gain clearly on average across apps.
    assert np.mean(firsts) > 1.2
    # And in a majority-ish of apps the best layer is in the earlier half.
    early_best = sum(
        1
        for layers in data.values()
        if int(np.argmax([e["speedup"] for e in layers])) < max(1, len(layers) // 2)
    )
    assert early_best >= len(data) // 2
