"""Fig. 16 — weight-compression schemes compared.

Paper shape: zero-pruning compresses 37 % of the elements but *slows
execution down* (0.65x) with only ~7 % power saving; software-only DRS
barely wins (1.07x); hardware (CRM-backed) DRS achieves better compression
(~50 %) and a substantial speedup on top of the software variant (+57.8 %).
"""

from repro.bench.harness import fig16_compression_schemes


def test_fig16_compression_schemes(benchmark, ctx, record_report):
    data, means, report = benchmark.pedantic(
        fig16_compression_schemes, args=(ctx,), rounds=1, iterations=1
    )
    record_report("fig16_compression", report)

    zp = means["zero_pruning"]
    sw = means["software_drs"]
    hw = means["hardware_drs"]

    # Zero-pruning: decent compression, but a slowdown.
    assert 0.30 < zp["compression"] < 0.45
    assert zp["speedup"] < 1.0
    # Software DRS: marginal gain (paper: 1.07x).
    assert 0.9 < sw["speedup"] < 1.35
    # Hardware DRS: better compression than zero-pruning and a clear win
    # over the software variant.
    assert hw["compression"] > zp["compression"]
    assert hw["speedup"] > sw["speedup"] * 1.15
    assert hw["energy_saving"] > sw["energy_saving"]
    # DRS compression in the paper's ballpark (50.35 %).
    assert 0.30 < hw["compression"] < 0.60
