"""Multi-tenant zoo-serving gate: dedup, shared-cache amortization, SLO control.

Exercises :mod:`repro.runtime.tenancy` three ways and writes
``BENCH_tenancy.json``:

* **arena dedup** — four tenants over two distinct networks (two fp64
  siblings of one model, two int8 siblings of another) must publish at
  most ``DEDUP_RATIO_BOUND`` of the bytes naive per-tenant publishing
  would (every duplicate acquire attaches existing pages through the
  :class:`~repro.runtime.arena.ArenaRegistry`);
* **shared-cache amortization** — after one tenant warms the cross-tenant
  :class:`~repro.core.program.ProgramCache`, a steady-state window
  serving *both* tenants of the same model must run at
  ``>= STEADY_HIT_RATE_FLOOR`` program-cache hit rate with **zero**
  recompiles — the second tenant never pays the first tenant's
  compilation;
* **SLO controller convergence** — a virtual-time open-loop run whose
  modeled per-precision tick cost makes the fp64 frontier point
  unsustainable at the offered rate: the tenant's
  :class:`~repro.runtime.controller.SLOController` must step to int8
  within ``MOVE_TICK_BOUND`` serving ticks, the trailing
  (post-reconvergence) window must meet the p99 SLO, and the tenant's
  sampled shadow agreement against the exact fp64 oracle must stay
  ``>= MIN_INT8_AGREEMENT``. Service costs are modeled, so every
  latency number is a pure function of the arrival seed and the gates
  are runner-independent.

Runs in short mode (smaller workload, same gates) when
``REPRO_BENCH_SHORT=1`` — the CI tenancy-gate job uses it::

    REPRO_BENCH_SHORT=1 PYTHONPATH=src python benchmarks/bench_tenancy.py
"""

from __future__ import annotations

import json
import pathlib
import sys

import numpy as np

from repro.bench.deflake import SHORT
from repro.bench.gates import GateSet
from repro.config import LSTMConfig
from repro.core.reference import ReferenceExecutor
from repro.core.executor import ExecutionConfig, ExecutionMode
from repro.nn.network import LSTMNetwork
from repro.obs.recorder import Recorder
from repro.runtime import (
    LoadSpec,
    OperatingPoint,
    SLOController,
    TenantSLO,
    TenantSpec,
    ZooServer,
    generate_tenant_arrivals,
    run_zoo_open_loop,
)

VOCAB = 200
NUM_CLASSES = 8
HIDDEN = 64
LAYERS = 2
HEAD_POOL = 16
SEQ_LEN = 24
TICK_INTERVAL_S = 0.002

#: Modeled service cost of one serving tick per weight precision (s).
#: int8 moves ~8x fewer weight bytes, so its modeled tick is cheaper —
#: the gap is what gives the controller a faster frontier point to move
#: to. Virtual time makes every latency gate deterministic.
MODEL_TICK_FP64_S = 0.020
MODEL_TICK_INT8_S = 0.008

#: Gate bounds.
DEDUP_RATIO_BOUND = 0.55
STEADY_HIT_RATE_FLOOR = 0.9
MOVE_TICK_BOUND = 64
SLO_P99_S = 0.12
MIN_INT8_AGREEMENT = 0.98


def build_network(seed: int) -> LSTMNetwork:
    config = LSTMConfig(
        hidden_size=HIDDEN, num_layers=LAYERS, seq_length=64, input_size=HIDDEN
    )
    return LSTMNetwork(
        config,
        vocab_size=VOCAB,
        num_classes=NUM_CLASSES,
        seed=seed,
        per_timestep_head=False,
        head_pool=HEAD_POOL,
    )


def model_service(report) -> float:
    """Modeled per-tick service cost by the serving operating point."""
    if report.point is not None and report.point.precision == "int8":
        return MODEL_TICK_INT8_S
    return MODEL_TICK_FP64_S


# ------------------------------------------------------------------- dedup


def check_dedup(gates: GateSet) -> dict:
    """Four tenants over two networks: registry bytes vs naive publishing."""
    net1 = build_network(seed=11)
    net2 = build_network(seed=23)
    with ZooServer() as server:
        server.add_tenant(TenantSpec(name="a1", model="m1", weight=2.0), net1)
        server.add_tenant(TenantSpec(name="a2", model="m1", weight=1.0), net1)
        server.add_tenant(
            TenantSpec(name="b1", model="m2", point=OperatingPoint(precision="int8")),
            net2,
        )
        server.add_tenant(
            TenantSpec(name="b2", model="m2", point=OperatingPoint(precision="int8")),
            net2,
        )
        stats = server.registry.stats
        ratio = stats.dedup_ratio

        # Serve a little traffic through the deduplicated arenas, and pin
        # the fp64 tenants to the frozen reference (the no-op discipline
        # must hold through the shared-arena path).
        rng = np.random.default_rng(5)
        tokens = [rng.integers(0, VOCAB, size=SEQ_LEN) for _ in range(8)]
        for i, tok in enumerate(tokens):
            for name in ("a1", "a2", "b1", "b2"):
                server.submit(name, f"{name}-{i}", tok, now=0.0)
        server.drain(now=0.0, service_model=model_service)
        reference = ReferenceExecutor(
            net1, ExecutionConfig(mode=ExecutionMode.BASELINE)
        )
        ref_logits = reference.run_batch(np.stack(tokens)).logits
        with ZooServer() as check:
            check.add_tenant(TenantSpec(name="a1", model="m1"), net1)
            pinned = [
                check.submit("a1", f"p{i}", tok, now=0.0)
                for i, tok in enumerate(tokens)
            ]
            check.drain(now=0.0, service_model=model_service)
            fp64_identical = all(
                np.array_equal(t.result.logits, ref_logits[i])
                for i, t in enumerate(pinned)
            )

    gates.require_at_most(
        "dedup/arena-bytes-ratio",
        ratio,
        DEDUP_RATIO_BOUND,
        "published arena bytes over naive per-tenant publishing "
        "(4 tenants, 2 networks)",
    )
    gates.require_true(
        "dedup/fp64-bit-identical",
        fp64_identical,
        "fp64 tenant logits through the shared-arena path differ from the "
        "frozen reference",
    )
    print(
        f"dedup: {stats.published_segments} segments, "
        f"{stats.published_bytes / 1e6:.2f} MB published vs "
        f"{stats.naive_bytes / 1e6:.2f} MB naive -> ratio {ratio:.3f} "
        f"(bound {DEDUP_RATIO_BOUND}), fp64 identical {fp64_identical}"
    )
    return {
        **stats.as_dict(),
        "fp64_bit_identical": fp64_identical,
        "bound": DEDUP_RATIO_BOUND,
    }


# ------------------------------------------------------------ shared cache


def check_shared_cache(gates: GateSet, steady_requests: int) -> dict:
    """Tenant B rides tenant A's warmed programs: steady state never compiles."""
    network = build_network(seed=11)
    rng = np.random.default_rng(9)
    with ZooServer(recorder=Recorder()) as server:
        server.add_tenant(TenantSpec(name="warm", model="m1"), network)
        server.add_tenant(TenantSpec(name="cold", model="m1"), network)
        # Warm phase: only "warm" serves; its misses compile the programs.
        for i in range(4):
            server.submit(
                "warm", f"w{i}", rng.integers(0, VOCAB, size=SEQ_LEN), now=0.0
            )
        server.drain(now=0.0, service_model=model_service)
        before = server.program_cache.stats.as_dict()
        # Steady phase: both tenants serve the same model geometry.
        for i in range(steady_requests):
            for name in ("warm", "cold"):
                server.submit(
                    name,
                    f"s{name}{i}",
                    rng.integers(0, VOCAB, size=SEQ_LEN),
                    now=0.0,
                )
        server.drain(now=0.0, service_model=model_service)
        after = server.program_cache.stats.as_dict()
        merged = server.merged_record()

    hits = after["program_hits"] - before["program_hits"]
    misses = after["program_misses"] - before["program_misses"]
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    gates.require_at_least(
        "shared-cache/steady-hit-rate",
        hit_rate,
        STEADY_HIT_RATE_FLOOR,
        "cross-tenant program-cache hit rate once one tenant warmed the model",
    )
    gates.require_at_most(
        "shared-cache/steady-recompiles",
        misses,
        0,
        "program compilations during the steady-state window",
    )
    cold_hits = int(merged.cache.get("cold/program_hits", 0)) if merged else 0
    cold_misses = int(merged.cache.get("cold/program_misses", 0)) if merged else 0
    print(
        f"shared cache: steady {hits} hits / {misses} misses "
        f"(rate {hit_rate:.3f}, floor {STEADY_HIT_RATE_FLOOR}); "
        f"cold tenant overall {cold_hits} hits / {cold_misses} misses"
    )
    return {
        "warm_phase": before,
        "steady_hits": hits,
        "steady_misses": misses,
        "steady_hit_rate": hit_rate,
        "cold_tenant_program_hits": cold_hits,
        "cold_tenant_program_misses": cold_misses,
        "hit_rate_floor": STEADY_HIT_RATE_FLOOR,
    }


# -------------------------------------------------------------- controller


def check_controller(gates: GateSet, duration_s: float) -> dict:
    """Overloaded fp64 tenant must step to int8 and re-meet its p99 SLO."""
    network = build_network(seed=11)
    frontier = [OperatingPoint(), OperatingPoint(precision="int8")]
    controller = SLOController(
        frontier,
        TenantSLO(p99_latency_s=SLO_P99_S, min_agreement=MIN_INT8_AGREEMENT),
        hysteresis=2,
        cooldown_ticks=4,
        min_latency_samples=8,
    )
    # Offered rate sits between the modeled fp64 capacity (~1/0.022 ~ 45
    # serving ticks/s at batch 1) and the int8 capacity (~1/0.010 = 100/s):
    # fp64 queues grow without bound, int8 drains them.
    spec = LoadSpec(
        duration_s=duration_s,
        session_rate=60.0,
        seed=42,
        diurnal_amplitude=0.2,
        session_len_min=SEQ_LEN,
        session_len_max=SEQ_LEN,
    )
    arrivals = generate_tenant_arrivals(spec, {"slo": 1.0}, {"slo": VOCAB})
    with ZooServer() as server:
        server.add_tenant(
            TenantSpec(name="slo", model="m1", shadow_every=2, queue_limit=256),
            network,
            controller=controller,
        )
        report = run_zoo_open_loop(
            server,
            arrivals,
            tick_interval_s=TICK_INTERVAL_S,
            service_model=model_service,
        )
        shadow = server.tenant_shadow("slo").as_dict()
        final_point = server.tenant_point("slo").as_dict()

    moved = bool(controller.moves)
    move_tick = controller.moves[0].tick if moved else -1
    samples = report.samples["slo"]
    # Trailing window: the last third of the (virtual) run, after the
    # controller has had time to reconverge.
    cutoff = report.duration_s * (2.0 / 3.0)
    trailing = [latency for (end, latency) in samples if end >= cutoff]
    trailing_p99 = (
        float(np.percentile(np.asarray(trailing), 99.0)) if trailing else float("inf")
    )
    agreement = shadow["agreement"] if shadow["agreement"] is not None else 0.0

    gates.require_true(
        "controller/moved-to-int8",
        moved and final_point["precision"] == "int8",
        "controller never stepped off the overloaded fp64 point",
    )
    gates.require_at_most(
        "controller/move-within-ticks",
        move_tick if moved else MOVE_TICK_BOUND + 1,
        MOVE_TICK_BOUND,
        "serving ticks before the first frontier step",
    )
    gates.require_at_most(
        "controller/trailing-p99-s",
        trailing_p99,
        SLO_P99_S,
        "p99 latency over the trailing third of the window (post-reconvergence)",
    )
    gates.require_at_least(
        "controller/int8-agreement",
        agreement,
        MIN_INT8_AGREEMENT,
        "sampled shadow agreement vs the exact fp64 oracle",
    )
    overall = report.per_tenant["slo"]
    print(
        f"controller: {len(arrivals)} arrivals, moved at tick {move_tick}, "
        f"moves {[(m.tick, m.reason) for m in controller.moves]}, "
        f"trailing p99 {trailing_p99 * 1e3:.1f} ms (SLO {SLO_P99_S * 1e3:.0f} ms), "
        f"agreement {agreement:.4f}, shed {overall.shed_submissions}"
    )
    return {
        "arrivals": len(arrivals),
        "model_tick_fp64_s": MODEL_TICK_FP64_S,
        "model_tick_int8_s": MODEL_TICK_INT8_S,
        "session_rate": spec.session_rate,
        "moved": moved,
        "move_tick": move_tick,
        "moves": [
            {"tick": m.tick, "from": m.from_index, "to": m.to_index,
             "reason": m.reason}
            for m in controller.moves
        ],
        "final_point": final_point,
        "trailing_p99_s": trailing_p99,
        "trailing_samples": len(trailing),
        "shadow": shadow,
        "load": report.as_dict(),
    }


def run() -> tuple[dict, GateSet]:
    gates = GateSet("tenancy")
    duration_s = 3.0 if SHORT else 8.0
    steady_requests = 8 if SHORT else 24

    dedup = check_dedup(gates)
    shared_cache = check_shared_cache(gates, steady_requests)
    controller = check_controller(gates, duration_s)

    return {
        "short_mode": SHORT,
        "workload": {
            "hidden_size": HIDDEN,
            "num_layers": LAYERS,
            "vocab_size": VOCAB,
            "num_classes": NUM_CLASSES,
            "seq_len": SEQ_LEN,
            "tick_interval_s": TICK_INTERVAL_S,
            "duration_s": duration_s,
        },
        "bounds": {
            "dedup_ratio_bound": DEDUP_RATIO_BOUND,
            "steady_hit_rate_floor": STEADY_HIT_RATE_FLOOR,
            "move_tick_bound": MOVE_TICK_BOUND,
            "slo_p99_s": SLO_P99_S,
            "min_int8_agreement": MIN_INT8_AGREEMENT,
        },
        "dedup": dedup,
        "shared_cache": shared_cache,
        "controller": controller,
        "gates": gates.as_dict(),
        "failures": gates.failures,
        "passed": gates.passed,
    }, gates


def main() -> int:
    report, gates = run()
    out_path = pathlib.Path(__file__).parent.parent / "BENCH_tenancy.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return gates.exit_code()


if __name__ == "__main__":
    sys.exit(main())
