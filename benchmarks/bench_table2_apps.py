"""Table II — the evaluated NLP applications."""

from repro.bench.harness import table2_applications


def test_table2_applications(benchmark, ctx, record_report):
    report = benchmark.pedantic(
        table2_applications, args=(ctx,), rounds=1, iterations=1
    )
    record_report("table2_applications", report)
    for name in ("IMDB", "MR", "BABI", "SNLI", "PTB", "MT"):
        assert name in report
