"""Section VI-F — optimization overheads.

Paper numbers: inter-cell 2.23 % time / 1.65 % power; intra-cell 3.39 %
time / 3.21 % power; CRM hardware 1.47 % time / <1 % power.
"""

import numpy as np

from repro.bench.harness import overheads_section6f


def test_overheads(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        overheads_section6f, args=(ctx,), rounds=1, iterations=1
    )
    record_report("overheads_section6f", report)

    inter_t = np.mean([d["inter_time"] for d in data.values()])
    intra_t = np.mean([d["intra_time"] for d in data.values()])
    crm_t = np.mean([d["crm_time"] for d in data.values()])

    # Light-weight inter-cell bookkeeping (paper: 2.23 %).
    assert 0.0 <= inter_t < 0.10
    # The intra kernel split costs more (paper: 3.39 %; our launch model
    # charges small models more heavily).
    assert 0.0 <= intra_t < 0.20
    # CRM is cheap (paper: 1.47 %).
    assert 0.0 <= crm_t < 0.03
