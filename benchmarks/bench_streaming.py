"""Streaming-serving gate: bit-identity, p99 latency, goodput under overload.

Exercises the :mod:`repro.runtime.streaming` continuous batcher three ways
and writes ``BENCH_streaming.json``:

* **fp64 bit-identity** — sessions served in *random* chunkings under
  *random* batch compositions must produce logits bit-identical to the
  frozen :class:`repro.core.reference.ReferenceExecutor` running each
  full sequence contiguously, for every streamable mode x head type
  (the streaming runtime's numerics contract);
* **capacity calibration** — the real measured full-batch tick cost and
  the streamed token throughput it implies (report-only: it describes
  the host, it is not a contract);
* **open-loop latency and overload** — a deterministic virtual-time run
  against Poisson/diurnal/heavy-tailed arrivals with a *modeled* tick
  service time (the queueing physics are then a pure function of the
  seed, so the latency gates are exact and runner-independent):

  - at ~60 % utilization, p99 submission latency must stay under
    ``P99_BOUND_S`` and nothing may shed;
  - at 2x overload, goodput must stay above ``GOODPUT_FLOOR_FRACTION``
    of modeled capacity (admission shedding, not collapse) and mean
    batch occupancy must exceed ``MIN_OVERLOAD_OCCUPANCY`` (the batcher
    actually batches under pressure).

Runs in short mode (smaller workload, same gates) when
``REPRO_BENCH_SHORT=1`` — the CI streaming-gate job uses it::

    REPRO_BENCH_SHORT=1 PYTHONPATH=src python benchmarks/bench_streaming.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro.bench.deflake import SHORT
from repro.bench.gates import GateSet
from repro.config import LSTMConfig
from repro.core.executor import ExecutionConfig, ExecutionMode
from repro.core.reference import ReferenceExecutor
from repro.nn.network import LSTMNetwork
from repro.runtime import LoadSpec, StreamingServer, generate_arrivals, run_open_loop

VOCAB = 200
NUM_CLASSES = 8
HIDDEN = 64
LAYERS = 2
HEAD_POOL = 3

MAX_BATCH = 8
CHUNK_LEN = 4
QUEUE_LIMIT = 64
TICK_INTERVAL_S = 0.002

#: Modeled service cost of one non-empty tick (s). The load phases run on
#: virtual time with this constant so the measured percentiles depend only
#: on the arrival seed, never on the CI runner; the real tick cost is
#: measured separately in the calibration section.
MODEL_TICK_S = 0.02
#: Modeled streamed capacity implied by MODEL_TICK_S at full occupancy.
MODEL_CAPACITY_TOKENS_S = MAX_BATCH * CHUNK_LEN / (MODEL_TICK_S + TICK_INTERVAL_S)

#: Nominal-phase utilization of the *modeled* full-occupancy capacity.
#: Effective capacity is lower — remainder chunks (< chunk_len tokens)
#: fragment ticks, and the diurnal peak offers 1.5x the base rate — so
#: 0.3 keeps even the peak comfortably below saturation.
NOMINAL_UTILIZATION = 0.3

#: Gate bounds (virtual-time, deterministic given the seed).
P99_BOUND_S = 0.25
GOODPUT_FLOOR_FRACTION = 0.5
MIN_OVERLOAD_OCCUPANCY = 0.5

#: Streamable modes under test (INTER/COMBINED are rejected by design).
MODES = {
    "baseline": ExecutionConfig(mode=ExecutionMode.BASELINE),
    "intra": ExecutionConfig(mode=ExecutionMode.INTRA, alpha_intra=0.35),
    "zero_prune": ExecutionConfig(mode=ExecutionMode.ZERO_PRUNE),
}


def build_network(per_timestep_head: bool) -> LSTMNetwork:
    config = LSTMConfig(
        hidden_size=HIDDEN, num_layers=LAYERS, seq_length=64, input_size=HIDDEN
    )
    return LSTMNetwork(
        config,
        vocab_size=VOCAB,
        num_classes=NUM_CLASSES,
        seed=11,
        per_timestep_head=per_timestep_head,
        head_pool=1 if per_timestep_head else HEAD_POOL,
    )


# ------------------------------------------------------------- bit-identity


def streamed_logits(
    network: LSTMNetwork,
    config: ExecutionConfig,
    sessions: dict[str, np.ndarray],
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Serve each session's tokens in random chunkings and batch mixes."""
    server = StreamingServer(
        network,
        config,
        max_batch=4,
        chunk_len=CHUNK_LEN,
        queue_limit=100_000,
        max_sessions=len(sessions) + 1,
        session_ttl_s=1e9,
        clock=lambda: 0.0,
    )
    tickets: dict[str, list] = {sid: [] for sid in sessions}
    cursor = dict.fromkeys(sessions, 0)
    live = sorted(sessions)
    while live:
        sid = live[int(rng.integers(len(live)))]
        tokens = sessions[sid]
        take = min(int(rng.integers(1, CHUNK_LEN + 1)), len(tokens) - cursor[sid])
        tickets[sid].append(
            server.submit(sid, tokens[cursor[sid] : cursor[sid] + take], now=0.0)
        )
        cursor[sid] += take
        if cursor[sid] == len(tokens):
            live.remove(sid)
        if rng.random() < 0.5:
            server.tick(now=0.0)
    server.drain(now=0.0)
    out = {}
    for sid, ticks in tickets.items():
        if network.per_timestep_head:
            out[sid] = np.concatenate([t.result.logits for t in ticks], axis=0)
        else:
            out[sid] = ticks[-1].result.logits
    return out


def check_bit_identity(gates: GateSet, num_sessions: int) -> dict:
    """Random-chunking streamed logits vs full-sequence frozen reference."""
    rng = np.random.default_rng(7)
    results: dict[str, dict] = {}
    for head in ("per-timestep", "pooled"):
        network = build_network(per_timestep_head=head == "per-timestep")
        sessions = {
            f"s{i:02d}": rng.integers(0, VOCAB, size=int(rng.integers(5, 33)))
            for i in range(num_sessions)
        }
        for mode_name, config in MODES.items():
            reference = ReferenceExecutor(network, config)
            streamed = streamed_logits(network, config, sessions, rng)
            identical = all(
                np.array_equal(
                    streamed[sid], reference.run_batch(tokens[None]).logits[0]
                )
                for sid, tokens in sessions.items()
            )
            gates.require_true(
                f"{mode_name}/{head}/bit-identical",
                identical,
                "streamed chunked logits differ from the contiguous reference",
            )
            results[f"{mode_name}/{head}"] = {
                "sessions": num_sessions,
                "bit_identical": identical,
            }
            print(f"bit-identity {mode_name:10s} {head:12s} {identical}")
    return results


# -------------------------------------------------------------- calibration


def calibrate(reps: int) -> dict:
    """Real measured full-batch tick cost (report-only)."""
    network = build_network(per_timestep_head=True)
    server = StreamingServer(
        network,
        MODES["baseline"],
        max_batch=MAX_BATCH,
        chunk_len=CHUNK_LEN,
        queue_limit=100_000,
        clock=lambda: 0.0,
    )
    rng = np.random.default_rng(3)

    def fill_and_tick() -> float:
        for j in range(MAX_BATCH):
            server.submit(f"c{j}", rng.integers(0, VOCAB, size=CHUNK_LEN), now=0.0)
        start = time.perf_counter()
        report = server.tick(now=0.0)
        assert report.batch == MAX_BATCH
        return time.perf_counter() - start

    fill_and_tick()  # warm the program cache
    walls = [fill_and_tick() for _ in range(reps)]
    tick_s = float(np.median(walls))
    tokens_per_s = MAX_BATCH * CHUNK_LEN / tick_s if tick_s > 0 else 0.0
    print(
        f"calibration: median full-batch tick {tick_s * 1e3:.3f} ms -> "
        f"{tokens_per_s:,.0f} tokens/s measured "
        f"(model: {MODEL_TICK_S * 1e3:.0f} ms, "
        f"{MODEL_CAPACITY_TOKENS_S:,.0f} tokens/s)"
    )
    return {
        "reps": reps,
        "measured_tick_s": tick_s,
        "measured_tokens_per_s": tokens_per_s,
        "model_tick_s": MODEL_TICK_S,
        "model_capacity_tokens_per_s": MODEL_CAPACITY_TOKENS_S,
    }


# ---------------------------------------------------------------- open loop


def load_phase(utilization: float, duration_s: float) -> tuple[dict, object]:
    """One deterministic open-loop run at a target utilization."""
    target_tokens_s = utilization * MODEL_CAPACITY_TOKENS_S
    base = LoadSpec(
        duration_s=duration_s,
        session_rate=10.0,
        seed=42,
        chunk_len=CHUNK_LEN,
        think_time_s=0.05,
    )
    probe = generate_arrivals(base, VOCAB)
    probe_tokens_s = sum(a.tokens.shape[0] for a in probe) / base.duration_s
    spec = LoadSpec(
        duration_s=duration_s,
        session_rate=10.0 * target_tokens_s / probe_tokens_s,
        seed=42,
        chunk_len=CHUNK_LEN,
        think_time_s=0.05,
    )
    arrivals = generate_arrivals(spec, VOCAB)

    network = build_network(per_timestep_head=True)
    server = StreamingServer(
        network,
        MODES["baseline"],
        max_batch=MAX_BATCH,
        chunk_len=CHUNK_LEN,
        queue_limit=QUEUE_LIMIT,
        clock=lambda: 0.0,
    )
    report = run_open_loop(
        server,
        arrivals,
        tick_interval_s=TICK_INTERVAL_S,
        service_time=lambda wall: MODEL_TICK_S if wall > 0.0 else 0.0,
    )
    summary = {
        "utilization_target": utilization,
        "offered_tokens_per_s": (
            report.offered_tokens / spec.duration_s if spec.duration_s else 0.0
        ),
        "session_rate": spec.session_rate,
        "arrivals": len(arrivals),
        **report.as_dict(),
        **{f"stats_{k}": v for k, v in server.stats.as_dict(MAX_BATCH).items()},
    }
    print(
        f"load {utilization:.1f}x: {len(arrivals)} arrivals, "
        f"p50 {report.percentile(50) * 1e3:6.1f} ms, "
        f"p99 {report.percentile(99) * 1e3:6.1f} ms, "
        f"goodput {report.goodput_tokens_per_s:7.1f} tok/s, "
        f"shed {report.shed_fraction:.3f}, "
        f"occupancy {server.stats.occupancy_mean(MAX_BATCH):.2f}"
    )
    return summary, report


def run() -> tuple[dict, GateSet]:
    gates = GateSet("streaming")
    duration_s = 3.0 if SHORT else 10.0
    num_sessions = 4 if SHORT else 8
    calib_reps = 5 if SHORT else 20

    identity = check_bit_identity(gates, num_sessions)
    calibration = calibrate(calib_reps)

    nominal, nominal_report = load_phase(
        utilization=NOMINAL_UTILIZATION, duration_s=duration_s
    )
    gates.require_at_most(
        "nominal/p99-latency-s",
        nominal_report.percentile(99.0),
        P99_BOUND_S,
        f"p99 submission latency at {NOMINAL_UTILIZATION:.0%} modeled utilization",
    )
    gates.require_at_most(
        "nominal/shed-fraction",
        nominal_report.shed_fraction,
        0.0,
        "nothing may shed below capacity",
    )

    overload, overload_report = load_phase(utilization=2.0, duration_s=duration_s)
    goodput_floor = GOODPUT_FLOOR_FRACTION * MODEL_CAPACITY_TOKENS_S
    gates.require_at_least(
        "overload/goodput-tokens-per-s",
        overload_report.goodput_tokens_per_s,
        goodput_floor,
        "goodput under 2x offered load (shed, don't collapse)",
    )
    gates.require_at_least(
        "overload/occupancy-mean",
        overload["stats_occupancy_mean"],
        MIN_OVERLOAD_OCCUPANCY,
        "mean tick batch occupancy under overload",
    )

    return {
        "short_mode": SHORT,
        "workload": {
            "hidden_size": HIDDEN,
            "num_layers": LAYERS,
            "vocab_size": VOCAB,
            "max_batch": MAX_BATCH,
            "chunk_len": CHUNK_LEN,
            "queue_limit": QUEUE_LIMIT,
            "tick_interval_s": TICK_INTERVAL_S,
            "load_duration_s": duration_s,
        },
        "bounds": {
            "p99_bound_s": P99_BOUND_S,
            "goodput_floor_tokens_per_s": goodput_floor,
            "min_overload_occupancy": MIN_OVERLOAD_OCCUPANCY,
        },
        "bit_identity": identity,
        "calibration": calibration,
        "nominal": nominal,
        "overload": overload,
        "gates": gates.as_dict(),
        "failures": gates.failures,
        "passed": gates.passed,
    }, gates


def main() -> int:
    report, gates = run()
    out_path = pathlib.Path(__file__).parent.parent / "BENCH_streaming.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return gates.exit_code()


if __name__ == "__main__":
    sys.exit(main())
