"""Fig. 17 — BABI performance-accuracy trade-offs vs model capacity.

Paper shape: at the same accuracy requirement, larger hidden sizes and
longer inputs achieve higher speedups; at small accuracy loss (the regime
NLP tasks operate in) the spread across capacities is modest.

The assertions compare speedups at fixed low threshold sets — the
high-accuracy regime where every configuration is still within a few
percent of exact — because the per-configuration accuracy estimates on the
reduced evaluation batches carry a few points of sampling noise.
"""

from repro.bench.harness import fig17_model_capacity

#: Position of threshold-set index 4 in the sweep (indices (0,2,4,6,8,10)).
_LOW_SET = 2


def test_fig17_model_capacity(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        fig17_model_capacity,
        args=(ctx,),
        kwargs={"hidden_sizes": (128, 256, 512), "lengths": (43, 86, 172)},
        rounds=1,
        iterations=1,
    )
    record_report("fig17_model_capacity", report)

    # Larger hidden size -> higher speedup at the same (low) threshold set.
    hidden_speed = {h: series[_LOW_SET][0] for h, series in data["hidden"].items()}
    assert hidden_speed[512] > hidden_speed[256] > hidden_speed[128]

    # Longer input -> higher speedup at the same (low) threshold set.
    length_speed = {l: series[_LOW_SET][0] for l, series in data["length"].items()}
    assert length_speed[172] > length_speed[86] > length_speed[43]

    # In the small-loss regime the accuracy spread across capacities is
    # modest (the paper's "model capacity has trivial impact" claim).
    low_accs = [series[1][1] for series in data["hidden"].values()]
    assert max(low_accs) - min(low_accs) < 0.1

    # Every sweep starts at the exact baseline.
    for series in list(data["hidden"].values()) + list(data["length"].values()):
        speedup0, accuracy0 = series[0]
        assert speedup0 == 1.0 and accuracy0 == 1.0
