"""Quantization regression gate: accuracy and bytes-moved vs the fp64 policy.

Runs the acceptance workload of ``bench_executor_regression`` under every
weight-storage policy x execution mode combination and enforces the
quantized-weight-memory contract:

* the **fp64 policy is a strict no-op** — bit-identical logits to the
  frozen :class:`repro.core.reference.ReferenceExecutor` in all five
  modes (quantization must never perturb the default path),
* **end-task accuracy** under fp16/int8 storage stays within the
  documented tolerance of the fp64 predictions per mode (prediction
  agreement; the paper's Δ-accuracy metric),
* **per-element error bound** — ``|deq(q(x)) - x| <= scale / 2`` holds
  for every int8-quantized weight matrix of the network (the symmetric
  per-row scheme's worst case is half a quantization step),
* **weight traffic**: int8 storage must cut the measured host weight
  bytes moved by >= 3x in combined mode (scale vectors and the
  never-skipped o-gate rows keep it below the raw 8x storage ratio).

Writes ``BENCH_quant.json`` and exits non-zero on any gate failure::

    PYTHONPATH=src python benchmarks/bench_quantization.py
"""

from __future__ import annotations

import json
import pathlib
import sys
from dataclasses import replace

import numpy as np

from repro.bench.gates import GateSet
from repro.config import LSTMConfig
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.plan import PlanCache
from repro.core.reference import ReferenceExecutor
from repro.gpu.simulator import TimingSimulator
from repro.nn.network import LSTMNetwork
from repro.nn.quantize import Precision, quantize_matrix

#: Documented accuracy tolerance: minimum prediction agreement with the
#: fp64 policy per storage policy. fp16's 2^-11 relative rounding never
#: moves an argmax on this head; int8's per-row step can flip borderline
#: predictions, bounded at 2 % of sequences on the acceptance workload.
MIN_AGREEMENT: dict[str, float] = {
    "fp16": 1.0,
    "int8": 0.98,
}

#: int8 combined-mode traffic gate (matches bench_executor_regression).
MIN_INT8_COMBINED_TRAFFIC_REDUCTION = 3.0

NUM_SEQUENCES = 64

MODES = (
    ExecutionMode.BASELINE,
    ExecutionMode.INTER,
    ExecutionMode.INTRA,
    ExecutionMode.COMBINED,
    ExecutionMode.ZERO_PRUNE,
)


def build_case() -> tuple[LSTMNetwork, np.ndarray]:
    """The bench_executor_regression acceptance workload."""
    config = LSTMConfig(hidden_size=64, num_layers=2, seq_length=64, input_size=64)
    network = LSTMNetwork(config, vocab_size=200, num_classes=8, seed=11)
    rng = np.random.default_rng(23)
    tokens = rng.integers(0, 200, size=(NUM_SEQUENCES, config.seq_length))
    return network, tokens


def mode_config(mode: ExecutionMode) -> ExecutionConfig:
    if mode is ExecutionMode.COMBINED:
        return ExecutionConfig(mode=mode, alpha_inter=1e12, alpha_intra=0.05, mts=5)
    if mode is ExecutionMode.INTER:
        return ExecutionConfig(mode=mode, alpha_inter=1e12, mts=5)
    if mode is ExecutionMode.INTRA:
        return ExecutionConfig(mode=mode, alpha_intra=0.05)
    return ExecutionConfig(mode=mode)


def error_bound_check(network: LSTMNetwork) -> dict:
    """Worst-case int8 round-trip error over every W/U matrix vs scale/2."""
    precision = Precision.parse("int8")
    worst_ratio = 0.0
    matrices = 0
    for layer in network.layers:
        weights = layer.weights
        for name in ("w_f", "w_i", "w_c", "w_o", "u_f", "u_i", "u_c", "u_o"):
            matrix = np.asarray(getattr(weights, name))
            q = quantize_matrix(matrix, precision)
            err = np.abs(q.dequantize() - matrix)
            half_step = np.where(q.scales > 0.0, q.scales / 2.0, np.inf)
            ratio = float((err / half_step[:, None]).max()) if err.size else 0.0
            worst_ratio = max(worst_ratio, ratio)
            matrices += 1
    return {
        "matrices_checked": matrices,
        "worst_error_over_half_step": worst_ratio,
        "bound_holds": worst_ratio <= 1.0,
    }


def traffic(executor: LSTMExecutor, plans, spec) -> tuple[float, float]:
    """Summed (fp64, moved) host weight bytes over every sequence trace."""
    simulator = TimingSimulator(spec)
    fp64 = moved = 0.0
    for plan in plans:
        trace = simulator.run_trace(executor.kernel_trace(plan))
        fp64 += trace.total_weight_bytes_fp64
        moved += trace.total_weight_bytes_moved
    return fp64, moved


def run() -> tuple[dict, GateSet]:
    network, tokens = build_case()
    results: dict[str, dict] = {}
    gates = GateSet("quant")
    for mode in MODES:
        config = mode_config(mode)
        reference = ReferenceExecutor(network, config)
        out_ref = reference.run_batch(tokens)

        per_mode: dict[str, dict] = {}
        fp64_exec = LSTMExecutor(network, config, plan_cache=PlanCache())
        out_fp64 = fp64_exec.run_batch(tokens)
        fp64_identical = bool(np.array_equal(out_fp64.logits, out_ref.logits))
        gates.require_true(
            f"{mode.value}/fp64-bit-identical",
            fp64_identical,
            "fp64 policy is not bit-identical to the reference",
        )
        per_mode["fp64"] = {"bit_identical_to_reference": fp64_identical}

        base_pred = out_fp64.predictions()
        for tag in ("fp16", "int8"):
            executor = LSTMExecutor(
                network, replace(config, precision=tag), plan_cache=PlanCache()
            )
            out = executor.run_batch(tokens)
            agreement = float(np.mean(out.predictions() == base_pred))
            gate = MIN_AGREEMENT[tag]
            gates.require_at_least(
                f"{mode.value}/{tag}/agreement",
                agreement,
                gate,
                "prediction agreement with the fp64 policy",
            )
            bytes_fp64, bytes_moved = traffic(executor, out.plans, config.spec)
            reduction = bytes_fp64 / bytes_moved if bytes_moved > 0.0 else 1.0
            per_mode[tag] = {
                "agreement_with_fp64": agreement,
                "min_agreement": gate,
                "bytes_moved_fp64": bytes_fp64,
                "bytes_moved_quant": bytes_moved,
                "traffic_reduction": reduction,
            }
            print(
                f"{mode.value:10s} {tag:5s} agreement {agreement:.4f} "
                f"(gate {gate:.2f})   traffic {reduction:4.2f}x less"
            )
        results[mode.value] = per_mode

    int8_combined = results["combined"]["int8"]["traffic_reduction"]
    gates.require_at_least(
        "combined/int8/traffic-reduction",
        int8_combined,
        MIN_INT8_COMBINED_TRAFFIC_REDUCTION,
    )

    bound = error_bound_check(network)
    gates.require_at_most(
        "int8/error-over-half-step",
        bound["worst_error_over_half_step"],
        1.0,
        "per-element |deq - x| / (scale/2)",
    )
    print(
        f"error bound: {bound['matrices_checked']} matrices, worst "
        f"|deq-x|/(scale/2) = {bound['worst_error_over_half_step']:.4f}"
    )

    return {
        "workload": {
            "num_sequences": NUM_SEQUENCES,
            "hidden_size": 64,
            "num_layers": 2,
            "seq_length": 64,
        },
        "min_int8_combined_traffic_reduction": MIN_INT8_COMBINED_TRAFFIC_REDUCTION,
        "results": results,
        "error_bound": bound,
        "gates": gates.as_dict(),
        "failures": gates.failures,
        "passed": gates.passed,
    }, gates


def main() -> int:
    report, gates = run()
    out_path = pathlib.Path(__file__).parent.parent / "BENCH_quant.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return gates.exit_code()


if __name__ == "__main__":
    sys.exit(main())
