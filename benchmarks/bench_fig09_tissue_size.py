"""Fig. 9 — layer performance vs tissue size, with the MTS knee.

Paper shape: performance rises with the tissue size, peaks at the MTS
(5-6 on the TX1), and droops beyond it as the shared-memory roof forces a
kernel re-configuration.
"""

import numpy as np

from repro.bench.harness import fig09_tissue_size_sweep


def test_fig09_tissue_size_sweep(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        fig09_tissue_size_sweep, args=(ctx,), rounds=1, iterations=1
    )
    record_report("fig09_tissue_size", report)
    for name, series in data.items():
        perf = series["performance"]
        mts = series["mts"]
        assert 4 <= mts <= 7, name
        # Rising before the knee...
        assert all(np.diff(perf[: mts]) > 0), name
        # ...and clearly better at the knee than at tissue size 1.
        assert perf[mts - 1] > 2.0, name
        # On-chip utilization approaches saturation at the MTS.
        assert series["onchip_utilization"][mts - 1] > 0.6, name
