"""Fig. 4 — contribution of each factor to Sgemv pipeline stalls.

Paper shape: off-chip memory access dominates the stall cycles of the
baseline ``Sgemv`` kernels on every application.
"""

from repro.bench.harness import fig04_stall_breakdown


def test_fig04_stall_breakdown(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        fig04_stall_breakdown, args=(ctx,), rounds=1, iterations=1
    )
    record_report("fig04_stall_breakdown", report)
    for name, stalls in data.items():
        assert stalls["off_chip_memory"] > 0.6, name
        assert stalls["sgemv_time_share"] > 0.8, name
