"""Fig. 18 — user-satisfaction scores of the four schemes.

Paper shape: AO beats the baseline (faster, loss imperceptible); BPA
scores worse than AO (users dislike visible accuracy loss); the per-user
tuned UO scheme scores best.
"""

import numpy as np

from repro.bench.harness import fig18_user_study


def test_fig18_user_study(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        fig18_user_study, args=(ctx,), rounds=1, iterations=1
    )
    record_report("fig18_user_study", report)

    mean = {
        scheme: float(np.mean([scores[scheme] for scores in data.values()]))
        for scheme in ("baseline", "AO", "BPA", "UO")
    }
    assert mean["AO"] > mean["baseline"]
    assert mean["UO"] >= mean["AO"] - 0.05
    assert mean["UO"] > mean["BPA"] - 1e-9
    for scheme, value in mean.items():
        assert 1.0 <= value <= 5.0, scheme
