"""Fig. 19 — speedup and accuracy across the 11 threshold sets.

Paper shape: speedup increases with the set index; accuracy is (noisily)
non-increasing; the AO set sits at the user-imperceptible loss point and
BPA at the best speedup x accuracy product.
"""

import numpy as np

from repro.bench.harness import fig19_threshold_sweep


def test_fig19_threshold_sweep(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        fig19_threshold_sweep, args=(ctx,), rounds=1, iterations=1
    )
    record_report("fig19_threshold_sweep", report)

    for name, entry in data.items():
        sweep = entry["sweep"]
        speeds = [e.speedup for e in sweep]
        accs = [e.accuracy for e in sweep]
        # Set 0 is the exact baseline.
        assert speeds[0] == 1.0 and accs[0] == 1.0
        # Speedup grows with the threshold set (monotone trend).
        assert speeds[-1] > speeds[0]
        assert np.mean(np.diff(speeds)) > 0
        # Accuracy trends down; allow small non-monotonic noise.
        assert accs[-1] <= accs[0]
        assert min(accs) >= 0.1
        # AO meets the accuracy target (or is the baseline).
        ao = entry["ao"]
        assert accs[ao] >= 0.98 or ao == 0
        # BPA maximizes the product.
        products = np.array(speeds) * np.array(accs)
        assert products[entry["bpa"]] == max(products)
