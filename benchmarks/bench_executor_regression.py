"""Benchmark-regression gate: batched executor vs the seed per-sequence walk.

Times :class:`repro.core.executor.LSTMExecutor` (united-gate GEMMs, grouped
combined mode, plan cache) against :class:`repro.core.reference.
ReferenceExecutor` (the frozen seed arithmetic) on the same workloads,
verifies bit-identical outputs, writes ``BENCH_executor.json``, and exits
non-zero if the batched executor regresses:

* every mode must be at least as fast as the reference (guard band below),
* combined mode on the 64-sequence workload must be >= 2x faster,
* attaching an enabled :class:`repro.obs.recorder.Recorder` must not
  change a logits bit and must stay under a 5 % wall-clock overhead.

Timing discipline (anti-flake): each executor gets ``WARMUP`` untimed
iterations (allocator/cache warm-up), then the reported number is the
*median* of ``REPEATS`` interleaved samples — both counts are recorded in
``BENCH_executor.json`` so a reader can judge the measurement. The cyclic
garbage collector is paused during the timed region (pyperf-style): both
executors build ~8k plan-record objects per run, and the resulting gen-2
collection pauses land in whichever executor happens to cross the
threshold, adding 10-20 ms of bimodal noise that swamps a 1.0x gate.

Run directly (CI does) or under pytest-benchmark via ``benchmarks/``::

    PYTHONPATH=src python benchmarks/bench_executor_regression.py
"""

from __future__ import annotations

import contextlib
import gc
import json
import pathlib
import statistics
import sys
import time

import numpy as np

from repro.config import LSTMConfig
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.plan import PlanCache
from repro.core.reference import ReferenceExecutor
from repro.nn.network import LSTMNetwork
from repro.obs import Recorder

#: Mode gates: minimum acceptable speedup of batched over reference.
#: Baseline/inter were already vectorized in the seed, so their gate is a
#: no-regression guard band sized for noisy shared CI runners, not a
#: speedup claim. Intra (DRS) must at least match the reference since the
#: per-gate restructure removed its compute-then-zero regression; combined
#: mode carries the hard 2x requirement from plan grouping + fused
#: projections.
MIN_SPEEDUP: dict[str, float] = {
    "baseline": 0.8,
    "inter": 0.8,
    "intra": 1.0,
    "combined": 2.0,
}

#: Recorder-enabled wall-clock must stay within this factor of recorder-off.
MAX_RECORDER_OVERHEAD = 1.05

NUM_SEQUENCES = 64
#: Untimed iterations before sampling starts.
WARMUP = 2
#: Timed samples per executor; the reported time is their median.
REPEATS = 7


@contextlib.contextmanager
def gc_paused():
    """Collect once, then keep the cyclic GC off for the timed region.

    Both executors allocate thousands of small plan-record objects per run;
    letting a gen-2 collection fire mid-sample charges a full-heap scan to
    whichever executor crossed the threshold, which is pure measurement
    noise for a relative gate.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def build_case() -> tuple[LSTMNetwork, np.ndarray]:
    """A mid-size 64-sequence workload (the acceptance workload)."""
    config = LSTMConfig(hidden_size=64, num_layers=2, seq_length=64, input_size=64)
    network = LSTMNetwork(config, vocab_size=200, num_classes=8, seed=11)
    rng = np.random.default_rng(23)
    tokens = rng.integers(0, 200, size=(NUM_SEQUENCES, config.seq_length))
    return network, tokens


def mode_config(mode: ExecutionMode) -> ExecutionConfig:
    if mode is ExecutionMode.COMBINED:
        # A threshold above every relevance value divides the layer fully,
        # which maximizes grouping pressure (all sequences share the plan
        # shape work) — the regime the batched combined path targets.
        return ExecutionConfig(
            mode=mode, alpha_inter=1e12, alpha_intra=0.05, mts=5
        )
    if mode is ExecutionMode.INTER:
        return ExecutionConfig(mode=mode, alpha_inter=1e12, mts=5)
    if mode is ExecutionMode.INTRA:
        return ExecutionConfig(mode=mode, alpha_intra=0.05)
    return ExecutionConfig(mode=mode)


def time_pair(
    batched, reference, tokens: np.ndarray, repeats: int = REPEATS
) -> tuple[float, float]:
    """Median-of-N wall times of both executors, interleaved.

    Alternating the two executors inside each repeat cancels slow clock /
    thermal drift that would otherwise bias whichever side runs last, and
    the median (vs min or mean) is robust to the occasional descheduling
    spike of a shared CI runner.
    """
    samples_b: list[float] = []
    samples_r: list[float] = []
    for _ in range(WARMUP):
        batched.run_batch(tokens)
        reference.run_batch(tokens)
    with gc_paused():
        for _ in range(repeats):
            start = time.perf_counter()
            batched.run_batch(tokens)
            samples_b.append(time.perf_counter() - start)
            start = time.perf_counter()
            reference.run_batch(tokens)
            samples_r.append(time.perf_counter() - start)
    return statistics.median(samples_b), statistics.median(samples_r)


def recorder_overhead(
    network: LSTMNetwork, tokens: np.ndarray, repeats: int = REPEATS
) -> dict:
    """Measure the enabled-Recorder overhead on the combined workload.

    Runs the batched executor with and without an attached recorder
    (interleaved, warmed up, median-of-N like :func:`time_pair`) and checks
    that recording never changes a logits bit relative to the frozen
    :class:`ReferenceExecutor` arithmetic.
    """
    config = mode_config(ExecutionMode.COMBINED)
    recorder = Recorder()
    plain = LSTMExecutor(network, config, plan_cache=PlanCache())
    recorded = LSTMExecutor(
        network, config, plan_cache=PlanCache(), recorder=recorder
    )
    reference = ReferenceExecutor(network, config)

    out_recorded = recorded.run_batch(tokens)
    out_reference = reference.run_batch(tokens)
    bit_identical = bool(np.array_equal(out_recorded.logits, out_reference.logits))

    samples_plain: list[float] = []
    samples_recorded: list[float] = []
    for _ in range(WARMUP):
        plain.run_batch(tokens)
        recorded.run_batch(tokens)
    with gc_paused():
        for _ in range(repeats):
            recorder.clear()
            start = time.perf_counter()
            plain.run_batch(tokens)
            samples_plain.append(time.perf_counter() - start)
            start = time.perf_counter()
            recorded.run_batch(tokens)
            samples_recorded.append(time.perf_counter() - start)
    t_plain = statistics.median(samples_plain)
    t_recorded = statistics.median(samples_recorded)
    return {
        "plain_s": t_plain,
        "recorded_s": t_recorded,
        "overhead_ratio": t_recorded / t_plain,
        "max_overhead_ratio": MAX_RECORDER_OVERHEAD,
        "bit_identical": bit_identical,
    }


def run() -> dict:
    network, tokens = build_case()
    results: dict[str, dict] = {}
    failures: list[str] = []
    for mode in (
        ExecutionMode.BASELINE,
        ExecutionMode.INTER,
        ExecutionMode.INTRA,
        ExecutionMode.COMBINED,
    ):
        config = mode_config(mode)
        batched = LSTMExecutor(network, config, plan_cache=PlanCache())
        reference = ReferenceExecutor(network, config)

        out_b = batched.run_batch(tokens)
        out_r = reference.run_batch(tokens)
        identical = bool(np.array_equal(out_b.logits, out_r.logits))
        if not identical:
            failures.append(f"{mode.value}: batched output differs from reference")

        t_batched, t_reference = time_pair(batched, reference, tokens)
        speedup = t_reference / t_batched
        gate = MIN_SPEEDUP[mode.value]
        if speedup < gate:
            failures.append(
                f"{mode.value}: speedup {speedup:.2f}x below the {gate:.1f}x gate"
            )
        results[mode.value] = {
            "batched_s": t_batched,
            "reference_s": t_reference,
            "speedup": speedup,
            "min_speedup": gate,
            "bit_identical": identical,
        }
        print(
            f"{mode.value:10s} batched {t_batched * 1e3:8.2f} ms   "
            f"reference {t_reference * 1e3:8.2f} ms   "
            f"{speedup:5.2f}x (gate {gate:.1f}x)   "
            f"bit-identical={identical}"
        )

    recorder = recorder_overhead(network, tokens)
    if not recorder["bit_identical"]:
        failures.append("recorder: recording changed the logits vs reference")
    if recorder["overhead_ratio"] > recorder["max_overhead_ratio"]:
        failures.append(
            f"recorder: {recorder['overhead_ratio']:.3f}x wall-clock overhead "
            f"exceeds the {recorder['max_overhead_ratio']:.2f}x gate"
        )
    print(
        f"{'recorder':10s} off     {recorder['plain_s'] * 1e3:8.2f} ms   "
        f"on        {recorder['recorded_s'] * 1e3:8.2f} ms   "
        f"{recorder['overhead_ratio']:5.3f}x (gate {recorder['max_overhead_ratio']:.2f}x)   "
        f"bit-identical={recorder['bit_identical']}"
    )

    return {
        "workload": {
            "num_sequences": NUM_SEQUENCES,
            "hidden_size": 64,
            "num_layers": 2,
            "seq_length": 64,
        },
        "timing": {
            "warmup_iterations": WARMUP,
            "repeats": REPEATS,
            "statistic": "median",
            "gc_paused_during_sampling": True,
        },
        "results": results,
        "recorder": recorder,
        "failures": failures,
        "passed": not failures,
    }


def main() -> int:
    report = run()
    out_path = pathlib.Path(__file__).parent.parent / "BENCH_executor.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    if not report["passed"]:
        for failure in report["failures"]:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("benchmark-regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
