"""Benchmark-regression gate: batched executor vs the seed per-sequence walk.

Times :class:`repro.core.executor.LSTMExecutor` — in its default
``compile=True`` form *and* with the interpreted loops — against
:class:`repro.core.reference.ReferenceExecutor` (the frozen seed
arithmetic) on the same workloads, verifies bit-identical outputs, writes
``BENCH_executor.json``, and exits non-zero if the executor regresses:

* every mode must be at least as fast as the reference (guard band below),
* combined mode on the 64-sequence workload must be >= 2x faster and the
  DRS (intra) mode >= 1.2x (the compiled-program bar),
* the compiled path must be >= 1.15x over the interpreted batched executor
  on the combined workload (see MIN_COMPILED_SPEEDUP for why the bar moved
  with the per-row projection lift),
* attaching an enabled :class:`repro.obs.recorder.Recorder` must not
  change a logits bit and must stay under a 5 % wall-clock overhead.

Program-compile wall time is recorded separately (``compile_wall_cold_s``
per mode) and **excluded from every speedup gate**: the warm-up
iterations populate the program cache before sampling starts, and the
gate asserts that no timed sample recompiled anything
(``compile_wall_steady_s`` must be exactly 0).

Timing discipline (anti-flake): each executor gets ``WARMUP`` untimed
iterations (allocator/cache warm-up), then the reported number is the
*minimum* of ``REPEATS`` interleaved samples over ``CONSTRUCTIONS``
independently constructed executor sets — all counts are recorded in
``BENCH_executor.json`` so a reader can judge the measurement. The min
is the right estimator because the noise is one-sided: a descheduled
sample is only ever slower, and an unlucky heap placement of an
executor's preallocated workspace (cache-set conflicts persist for that
instance's lifetime) only ever adds time, so re-rolling the placement
across constructions and keeping the fastest sample per executor
estimates the true cost. A median still wobbles with machine load and a
single construction bakes placement luck into the ratios. The cyclic
garbage collector is paused during the timed region (pyperf-style): the
executors build ~8k plan-record objects per run, and the resulting gen-2
collection pauses land in whichever executor happens to cross the
threshold, adding 10-20 ms of bimodal noise that swamps a 1.0x gate.

Run directly (CI does) or under pytest-benchmark via ``benchmarks/``::

    PYTHONPATH=src python benchmarks/bench_executor_regression.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from dataclasses import replace

from repro.config import LSTMConfig
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.bench.deflake import REPEATS, WARMUP, gc_paused, pick
from repro.bench.gates import GateSet
from repro.core.plan import PlanCache
from repro.core.reference import ReferenceExecutor
from repro.gpu.simulator import TimingSimulator
from repro.nn.network import LSTMNetwork
from repro.obs import Recorder

#: Mode gates: minimum acceptable speedup of the (compiled) batched
#: executor over the reference. Baseline/inter were already vectorized in
#: the seed, so their gate is a no-regression guard band sized for noisy
#: shared CI runners, not a speedup claim. Intra (DRS) carries a 1.2x bar:
#: the compiled program collapses its per-step work into one stacked
#: matmul plus in-place chains. Combined mode keeps the hard 2x
#: requirement from plan grouping + fused projections.
MIN_SPEEDUP: dict[str, float] = {
    "baseline": 0.8,
    "inter": 0.8,
    "intra": 1.2,
    "combined": 2.0,
}

#: Compiled-vs-interpreted gate (same executor, programs on vs off).
#: Combined keeps the hard bar the plan-compilation layer must buy; intra
#: must never fall behind the interpreted DRS loop again (the program now
#: runs the same o-first compacted elementwise chain); baseline and inter
#: carry no-regression guard bands — their interpreted loops are already
#: one fused matmul per step, so the program's win is small and a shared
#: CI runner can eat a few percent either way.  The combined bar dropped
#: 1.3 -> 1.15 with the per-row projection/head lift: the lift pins every
#: token's projection bits regardless of batch shape (the streaming
#: bit-identity contract) but spends identical per-row GEMV time in both
#: paths, shrinking the compiled program's share of the wall clock
#: (measured ~1.28x after the lift vs ~1.36x before).
MIN_COMPILED_SPEEDUP: dict[str, float] = {
    "baseline": 0.9,
    "inter": 0.9,
    "intra": 1.0,
    "combined": 1.15,
}

#: Weight-traffic gate: int8 storage must cut the measured weight bytes
#: moved on the combined workload by at least this factor vs fp64 (per-row
#: scale vectors and the never-skipped o-gate rows keep it under the raw
#: 8x storage ratio).
MIN_INT8_COMBINED_TRAFFIC_REDUCTION = 3.0

#: Recorder-enabled wall-clock must stay within this factor of recorder-off.
MAX_RECORDER_OVERHEAD = 1.05

NUM_SEQUENCES = 64
#: Warm-up/timed-sample discipline comes from the shared de-flake module
#: (repro.bench.deflake): WARMUP untimed iterations, then the reported
#: time is the minimum over REPEATS samples per executor per construction.
#: Independent executor constructions per mode (re-rolls heap placement).
CONSTRUCTIONS = 2
#: The recorder gate compares two near-identical wall times (the true
#: overhead is well under a millisecond), so its min needs more samples
#: than the mode gates to keep sampling jitter out of a 5 % band.
RECORDER_REPEATS = pick(15, 7)


def build_case() -> tuple[LSTMNetwork, np.ndarray]:
    """A mid-size 64-sequence workload (the acceptance workload)."""
    config = LSTMConfig(hidden_size=64, num_layers=2, seq_length=64, input_size=64)
    network = LSTMNetwork(config, vocab_size=200, num_classes=8, seed=11)
    rng = np.random.default_rng(23)
    tokens = rng.integers(0, 200, size=(NUM_SEQUENCES, config.seq_length))
    return network, tokens


def mode_config(mode: ExecutionMode) -> ExecutionConfig:
    if mode is ExecutionMode.COMBINED:
        # A threshold above every relevance value divides the layer fully,
        # which maximizes grouping pressure (all sequences share the plan
        # shape work) — the regime the batched combined path targets.
        return ExecutionConfig(
            mode=mode, alpha_inter=1e12, alpha_intra=0.05, mts=5
        )
    if mode is ExecutionMode.INTER:
        return ExecutionConfig(mode=mode, alpha_inter=1e12, mts=5)
    if mode is ExecutionMode.INTRA:
        return ExecutionConfig(mode=mode, alpha_intra=0.05)
    return ExecutionConfig(mode=mode)


def time_group(executors, tokens: np.ndarray, repeats: int = REPEATS) -> list[float]:
    """Min-of-N wall times of several executors, interleaved.

    Interleaving the executors inside each repeat cancels slow clock /
    thermal drift that would otherwise bias whichever one runs last, and
    the min discards descheduling spikes entirely — scheduler noise only
    ever *adds* time, so the fastest sample is the best estimate of each
    executor's true cost. The warm-up pass also populates plan and
    program caches, so compile time never lands in a timed sample (the
    caller asserts this via ``compile_wall_s``).
    """
    samples: list[list[float]] = [[] for _ in executors]
    for _ in range(WARMUP):
        for executor in executors:
            executor.run_batch(tokens)
    with gc_paused():
        for _ in range(repeats):
            for slot, executor in enumerate(executors):
                start = time.perf_counter()
                executor.run_batch(tokens)
                samples[slot].append(time.perf_counter() - start)
    return [min(s) for s in samples]


def weight_traffic(
    network: LSTMNetwork, tokens: np.ndarray, config: ExecutionConfig
) -> dict:
    """Measured host weight bytes of one mode: fp64 storage vs int8.

    Runs the workload once under the int8 policy and sums the per-kernel
    byte counters over every sequence's simulated trace.
    ``bytes_moved_fp64`` is what the same kernels — same skips, same
    surviving rows — would stream at float64 storage, so the ratio
    isolates the storage policy from the row skipping it compounds with.
    """
    executor = LSTMExecutor(
        network, replace(config, precision="int8"), plan_cache=PlanCache()
    )
    out = executor.run_batch(tokens)
    simulator = TimingSimulator(config.spec)
    fp64 = moved = 0.0
    for plan in out.plans:
        trace = simulator.run_trace(executor.kernel_trace(plan))
        fp64 += trace.total_weight_bytes_fp64
        moved += trace.total_weight_bytes_moved
    return {
        "precision": "int8",
        "bytes_moved_fp64": fp64,
        "bytes_moved_quant": moved,
        "traffic_reduction": fp64 / moved if moved > 0.0 else 1.0,
    }


def recorder_overhead(
    network: LSTMNetwork, tokens: np.ndarray, repeats: int = RECORDER_REPEATS
) -> dict:
    """Measure the enabled-Recorder overhead on the combined workload.

    Times **one** executor instance with its recorder detached and
    attached on alternating repeats (warmed up, min-of-N like
    :func:`time_group`), and checks that recording never changes a
    logits bit relative to the frozen :class:`ReferenceExecutor`
    arithmetic. A single toggled instance matters here: two separately
    constructed executors land their workspaces at different heap
    offsets and carry a persistent few-percent wall-clock bias either
    way — larger than the sub-millisecond recording cost this gate
    bounds. Toggling ``executor.recorder`` on one instance keeps every
    buffer, cache, and program identical between the two phases, so the
    difference is exactly the recording work.
    """
    config = mode_config(ExecutionMode.COMBINED)
    recorder = Recorder()
    executor = LSTMExecutor(
        network, config, plan_cache=PlanCache(), recorder=recorder
    )
    reference = ReferenceExecutor(network, config)

    out_recorded = executor.run_batch(tokens)
    out_reference = reference.run_batch(tokens)
    bit_identical = bool(np.array_equal(out_recorded.logits, out_reference.logits))

    samples_plain: list[float] = []
    samples_recorded: list[float] = []
    for _ in range(WARMUP):
        executor.recorder = None
        executor.run_batch(tokens)
        executor.recorder = recorder
        executor.run_batch(tokens)
    with gc_paused():
        for _ in range(repeats):
            recorder.clear()
            executor.recorder = None
            start = time.perf_counter()
            executor.run_batch(tokens)
            samples_plain.append(time.perf_counter() - start)
            executor.recorder = recorder
            start = time.perf_counter()
            executor.run_batch(tokens)
            samples_recorded.append(time.perf_counter() - start)
    t_plain = min(samples_plain)
    t_recorded = min(samples_recorded)
    return {
        "plain_s": t_plain,
        "recorded_s": t_recorded,
        "overhead_ratio": t_recorded / t_plain,
        "max_overhead_ratio": MAX_RECORDER_OVERHEAD,
        "bit_identical": bit_identical,
    }


def run() -> tuple[dict, GateSet]:
    network, tokens = build_case()
    results: dict[str, dict] = {}
    gates = GateSet("executor")
    for mode in (
        ExecutionMode.BASELINE,
        ExecutionMode.INTER,
        ExecutionMode.INTRA,
        ExecutionMode.COMBINED,
    ):
        config = mode_config(mode)
        times: list[float] | None = None
        compile_wall_cold = 0.0
        identical = True
        for attempt in range(CONSTRUCTIONS):
            compiled = LSTMExecutor(network, config, plan_cache=PlanCache())
            interpreted = LSTMExecutor(
                network, config, plan_cache=PlanCache(), compile=False
            )
            reference = ReferenceExecutor(network, config)

            out_c = compiled.run_batch(tokens)
            if attempt == 0:
                compile_wall_cold = out_c.timings["compile_wall_s"]
                out_r = reference.run_batch(tokens)
                identical = bool(np.array_equal(out_c.logits, out_r.logits))
                gates.require_true(
                    f"{mode.value}/bit-identical",
                    identical,
                    "compiled output differs from reference",
                )

            sample = time_group([compiled, interpreted, reference], tokens)
            times = (
                sample
                if times is None
                else [min(a, b) for a, b in zip(times, sample)]
            )
            # Compile time must never contaminate the gates: every program
            # was built during warm-up, so a steady-state run recompiles
            # nothing.
            compile_wall_steady = compiled.run_batch(tokens).timings[
                "compile_wall_s"
            ]
            gates.require_at_most(
                f"{mode.value}/steady-recompile-s",
                compile_wall_steady,
                0.0,
                "a timed steady-state run recompiled a program",
            )
        t_compiled, t_interpreted, t_reference = times

        speedup = t_reference / t_compiled
        gate = MIN_SPEEDUP[mode.value]
        gates.require_at_least(
            f"{mode.value}/speedup", speedup, gate, "compiled vs reference"
        )
        compiled_speedup = t_interpreted / t_compiled
        compiled_gate = MIN_COMPILED_SPEEDUP.get(mode.value)
        if compiled_gate is not None:
            gates.require_at_least(
                f"{mode.value}/compiled-speedup",
                compiled_speedup,
                compiled_gate,
                "compiled vs interpreted",
            )
        traffic = weight_traffic(network, tokens, config)
        traffic_gate = (
            MIN_INT8_COMBINED_TRAFFIC_REDUCTION
            if mode is ExecutionMode.COMBINED
            else None
        )
        traffic["min_traffic_reduction"] = traffic_gate
        if traffic_gate is not None:
            gates.require_at_least(
                f"{mode.value}/int8-traffic-reduction",
                traffic["traffic_reduction"],
                traffic_gate,
            )
        results[mode.value] = {
            "batched_s": t_compiled,
            "interpreted_s": t_interpreted,
            "reference_s": t_reference,
            "speedup": speedup,
            "min_speedup": gate,
            "compiled_speedup": compiled_speedup,
            "min_compiled_speedup": compiled_gate,
            "compile_wall_cold_s": compile_wall_cold,
            "compile_wall_steady_s": compile_wall_steady,
            "compile_excluded_from_gates": True,
            "bit_identical": identical,
            "weight_traffic": traffic,
        }
        print(
            f"{mode.value:10s} compiled {t_compiled * 1e3:8.2f} ms   "
            f"interpreted {t_interpreted * 1e3:8.2f} ms   "
            f"reference {t_reference * 1e3:8.2f} ms   "
            f"{speedup:5.2f}x (gate {gate:.1f}x)   "
            f"c/i {compiled_speedup:5.2f}x   "
            f"compile {compile_wall_cold * 1e3:6.2f} ms cold   "
            f"int8 traffic {traffic['traffic_reduction']:4.2f}x less   "
            f"bit-identical={identical}"
        )

    recorder = recorder_overhead(network, tokens)
    gates.require_true(
        "recorder/bit-identical",
        recorder["bit_identical"],
        "recording changed the logits vs reference",
    )
    gates.require_at_most(
        "recorder/overhead-ratio",
        recorder["overhead_ratio"],
        recorder["max_overhead_ratio"],
        "wall-clock overhead of an enabled recorder",
    )
    print(
        f"{'recorder':10s} off      {recorder['plain_s'] * 1e3:8.2f} ms   "
        f"on          {recorder['recorded_s'] * 1e3:8.2f} ms   "
        f"{recorder['overhead_ratio']:5.3f}x (gate {recorder['max_overhead_ratio']:.2f}x)   "
        f"bit-identical={recorder['bit_identical']}"
    )

    return {
        "workload": {
            "num_sequences": NUM_SEQUENCES,
            "hidden_size": 64,
            "num_layers": 2,
            "seq_length": 64,
        },
        "timing": {
            "warmup_iterations": WARMUP,
            "repeats": REPEATS,
            "constructions": CONSTRUCTIONS,
            "recorder_repeats": RECORDER_REPEATS,
            "statistic": "min",
            "gc_paused_during_sampling": True,
            "compile_excluded_from_gates": True,
        },
        "results": results,
        "recorder": recorder,
        "gates": gates.as_dict(),
        "failures": gates.failures,
        "passed": gates.passed,
    }, gates


def main() -> int:
    report, gates = run()
    out_path = pathlib.Path(__file__).parent.parent / "BENCH_executor.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return gates.exit_code()


if __name__ == "__main__":
    sys.exit(main())
