"""Ablations of the design choices called out in DESIGN.md §6."""

from repro.bench.harness import (
    ablation_exact_relevance,
    ablation_large_gpu,
    ablation_predicted_link,
    ablation_tissue_alignment,
)


def test_tissue_alignment_helps(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        ablation_tissue_alignment, args=(ctx,), rounds=1, iterations=1
    )
    record_report("ablation_tissue_alignment", report)
    # Balancing fat/thin tissues under the MTS is at least as fast.
    assert data["gain"] >= 1.0


def test_predicted_link_recovers_accuracy(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        ablation_predicted_link, args=(ctx,), rounds=1, iterations=1
    )
    record_report("ablation_predicted_link", report)
    # The Eq. 6 vector does no worse than a zero link (usually better).
    assert data["predicted"] >= data["zero"] - 0.02


def test_large_gpu_avoids_reloads(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        ablation_large_gpu, args=(ctx,), rounds=1, iterations=1
    )
    record_report("ablation_large_gpu", report)
    # Mobile: ~one full re-load per cell; M40: the matrix stays in L2.
    assert data["mobile"] > 5 * data["server"]
    assert data["mobile"] > 10


def test_exact_relevance_is_consistent(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        ablation_exact_relevance, args=(ctx,), rounds=1, iterations=1
    )
    record_report("ablation_exact_relevance", report)
    # Both formulas find breakpoints at this operating point.
    assert data["paper"] > 0
