"""Backend-lowering gate: numerics and speed of the fused kernel backends.

Runs the acceptance workload of ``bench_executor_regression`` under every
execution mode with each available compiled-program backend and enforces
the backend contract (``repro.core.backends``):

* the **numpy backend is the frozen oracle** — bit-identical logits to
  :class:`repro.core.reference.ReferenceExecutor` in all five modes
  (selecting a backend must never perturb the default path),
* the **fused backend agrees at tolerance** — ``max |Δ|`` against the
  oracle stays within ``FUSED_TOLERANCE`` per mode and prediction
  agreement is exact on the acceptance workload,
* **plans are backend-invariant** — the modeled weight-traffic counters
  (bytes moved on the simulated mobile GPU) are identical under every
  backend, because backends change host arithmetic, never the plan,
* the **fused backend is actually fast** — per-request latency geometry
  (batch 1, the streaming hot path) must beat the interpreted executor
  by at least ``MIN_FUSED_SPEEDUP``×,
* **unavailable backends skip cleanly** — missing toolchains surface a
  reason string and raise ``BackendUnavailableError`` at resolution, not
  an ImportError mid-run.

Writes ``BENCH_backends.json`` and exits non-zero on any gate failure::

    PYTHONPATH=src python benchmarks/bench_backends.py

Honors ``REPRO_BENCH_SHORT=1`` (smaller workload, fewer timing repeats).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro.bench.deflake import SHORT, gc_paused, pick
from repro.bench.gates import GateSet
from repro.config import LSTMConfig
from repro.core.backends import backend_availability, resolve_backend
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.reference import ReferenceExecutor
from repro.errors import BackendUnavailableError
from repro.gpu.simulator import TimingSimulator
from repro.nn.network import LSTMNetwork

#: Fused-backend numerics bound: max absolute logit deviation from the
#: fp64 oracle. Measured ~4e-16 on the acceptance workload; the bound
#: leaves seven orders of magnitude of headroom while still catching any
#: real kernel defect.
FUSED_TOLERANCE = 1e-9

#: Fused-vs-interpreted latency floor at batch 1 (the per-request
#: streaming geometry, where the fused single-call kernel shines).
#: Measured ~3.5x on the development host; 1.5x absorbs CI-runner noise.
MIN_FUSED_SPEEDUP = 1.5

NUM_SEQUENCES = pick(64, 16)
TIMING_REPEATS = pick(9, 5)

MODES = (
    ExecutionMode.BASELINE,
    ExecutionMode.INTER,
    ExecutionMode.INTRA,
    ExecutionMode.COMBINED,
    ExecutionMode.ZERO_PRUNE,
)


def build_case() -> tuple[LSTMNetwork, np.ndarray]:
    """The bench_executor_regression acceptance workload."""
    config = LSTMConfig(hidden_size=64, num_layers=2, seq_length=64, input_size=64)
    network = LSTMNetwork(config, vocab_size=200, num_classes=8, seed=11)
    rng = np.random.default_rng(23)
    tokens = rng.integers(0, 200, size=(NUM_SEQUENCES, config.seq_length))
    return network, tokens


def mode_config(mode: ExecutionMode, backend: str = "numpy") -> ExecutionConfig:
    if mode is ExecutionMode.COMBINED:
        return ExecutionConfig(
            mode=mode, alpha_inter=1e12, alpha_intra=0.05, mts=5, backend=backend
        )
    if mode is ExecutionMode.INTER:
        return ExecutionConfig(mode=mode, alpha_inter=1e12, mts=5, backend=backend)
    if mode is ExecutionMode.INTRA:
        return ExecutionConfig(mode=mode, alpha_intra=0.05, backend=backend)
    return ExecutionConfig(mode=mode, backend=backend)


def weight_traffic(executor: LSTMExecutor, plans) -> float:
    """Summed modeled weight bytes moved over every sequence trace."""
    simulator = TimingSimulator(executor.config.spec)
    moved = 0.0
    for plan in plans:
        trace = simulator.run_trace(executor.kernel_trace(plan))
        moved += trace.total_weight_bytes_moved
    return moved


def availability_report(gates: GateSet) -> dict:
    """Record backend availability; gate the clean-skip contract."""
    availability = backend_availability()
    gates.require_true("numpy_available", availability["numpy"][0])
    report = {}
    for name, (ok, reason) in availability.items():
        report[name] = {"available": ok, "reason": reason}
        if ok:
            continue
        # A missing toolchain must carry a human-readable reason and fail
        # resolution with BackendUnavailableError, not an ImportError.
        gates.require_true(
            f"{name}_skip_reason", bool(reason), detail=f"{name} reports no reason"
        )
        try:
            resolve_backend(name)
            raised = False
        except BackendUnavailableError:
            raised = True
        gates.require_true(f"{name}_unavailable_raises", raised)
    report["fused_resolves_to"] = resolve_backend("fused")
    return report


def agreement_run(network, tokens, gates: GateSet) -> dict:
    """Per-mode numerics gates for the numpy and fused backends."""
    results = {}
    for mode in MODES:
        out_ref = ReferenceExecutor(network, mode_config(mode)).run_batch(tokens)
        ref_pred = np.asarray(out_ref.predictions())

        numpy_exec = LSTMExecutor(network, mode_config(mode))
        out_numpy = numpy_exec.run_batch(tokens)
        bit_identical = bool(np.array_equal(out_numpy.logits, out_ref.logits))
        gates.require_true(f"numpy_bit_identical_{mode.value}", bit_identical)

        fused_exec = LSTMExecutor(network, mode_config(mode, backend="fused"))
        out_fused = fused_exec.run_batch(tokens)
        max_delta = float(np.abs(out_fused.logits - out_ref.logits).max())
        agreement = float(
            np.mean(np.asarray(out_fused.predictions()) == ref_pred)
        )
        gates.require_at_most(f"fused_max_delta_{mode.value}", max_delta, FUSED_TOLERANCE)
        gates.require_at_least(f"fused_agreement_{mode.value}", agreement, 1.0)

        moved_numpy = weight_traffic(numpy_exec, out_numpy.plans)
        moved_fused = weight_traffic(fused_exec, out_fused.plans)
        gates.require_true(
            f"traffic_backend_invariant_{mode.value}",
            moved_numpy == moved_fused,
            detail=f"numpy {moved_numpy:.0f} B vs fused {moved_fused:.0f} B",
        )
        results[mode.value] = {
            "numpy_bit_identical": bit_identical,
            "fused_backend": fused_exec.backend,
            "fused_max_delta": max_delta,
            "fused_agreement": agreement,
            "weight_bytes_moved": moved_numpy,
        }
    return results


def _best_wall_s(executor: LSTMExecutor, tokens: np.ndarray) -> float:
    executor.run_batch(tokens)  # warm caches / plan / programs
    best = float("inf")
    with gc_paused():
        for _ in range(TIMING_REPEATS):
            start = time.perf_counter()
            executor.run_batch(tokens)
            best = min(best, time.perf_counter() - start)
    return best


def speedup_run(network, gates: GateSet) -> dict:
    """Fused-vs-interpreted latency floor at the batch-1 geometry."""
    rng = np.random.default_rng(7)
    tokens = rng.integers(0, 200, size=(1, 64))
    config = mode_config(ExecutionMode.INTRA)
    interpreted = LSTMExecutor(network, config, compile=False)
    fused = LSTMExecutor(network, mode_config(ExecutionMode.INTRA, backend="fused"))
    wall_interp = _best_wall_s(interpreted, tokens)
    wall_fused = _best_wall_s(fused, tokens)
    speedup = wall_interp / wall_fused
    gates.require_at_least(
        "fused_speedup_vs_interpreted",
        speedup,
        MIN_FUSED_SPEEDUP,
        detail=f"interp {wall_interp * 1e3:.2f} ms vs fused {wall_fused * 1e3:.2f} ms",
    )
    return {
        "geometry": {"batch": 1, "seq_length": 64, "mode": "intra"},
        "interpreted_wall_s": wall_interp,
        "fused_wall_s": wall_fused,
        "speedup": speedup,
    }


def run() -> tuple[dict, GateSet]:
    gates = GateSet("backends")
    network, tokens = build_case()
    availability = availability_report(gates)
    modes = agreement_run(network, tokens, gates)
    speedup = speedup_run(network, gates)
    report = {
        "short": SHORT,
        "num_sequences": NUM_SEQUENCES,
        "availability": availability,
        "modes": modes,
        "speedup": speedup,
        "gates": gates.as_dict(),
        "failures": gates.failures,
        "passed": gates.passed,
    }
    return report, gates


def main() -> int:
    report, gates = run()
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_backends.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    for mode, block in report["modes"].items():
        print(
            f"{mode:10s} fused[{block['fused_backend']}] "
            f"max|d|={block['fused_max_delta']:.2e} "
            f"agreement={block['fused_agreement']:.3f}"
        )
    print(
        f"batch-1 speedup: {report['speedup']['speedup']:.2f}x "
        f"(floor {MIN_FUSED_SPEEDUP}x)"
    )
    return gates.exit_code()


if __name__ == "__main__":
    sys.exit(main())
