"""Fig. 14 — the headline result: speedup and energy saving of the
inter-cell, intra-cell, and combined optimizations at the 98 % accuracy
target.

Paper numbers: inter 2.05x / 35.94 %, intra 1.65x / 16.93 %, combined
2.54x (up to 3.24x) / 47.23 % (up to 58.82 %). The reproduction targets the
shape: combined > inter > intra, PTB (largest + longest) on top, energy
savings tracking speedups sublinearly.
"""

from repro.bench.harness import fig14_overall


def test_fig14_overall(benchmark, ctx, record_report):
    data, means, report = benchmark.pedantic(
        fig14_overall, args=(ctx,), rounds=1, iterations=1
    )
    record_report("fig14_overall", report)

    inter_speed, inter_energy = means["inter"]
    intra_speed, intra_energy = means["intra"]
    combined_speed, combined_energy = means["combined"]

    # Ordering: combined >= inter > intra > 1.
    assert combined_speed >= inter_speed > intra_speed > 1.0
    # Rough magnitudes (paper: 2.05 / 1.65 / 2.54).
    assert 1.3 < inter_speed < 3.0
    assert 1.1 < intra_speed < 2.2
    assert 1.6 < combined_speed < 3.6
    # Energy savings accompany the speedups (paper: 36 / 17 / 47 %).
    assert 0.15 < inter_energy < 0.55
    assert 0.05 < intra_energy < 0.40
    assert 0.25 < combined_energy < 0.65
    # Accuracy: every combined operating point meets the target.
    for name, entry in data.items():
        assert entry["combined"].accuracy >= 0.98, name

    # The largest + longest application (PTB) is among the biggest winners
    # (the paper has it first; our MR model ties within noise).
    if "PTB" in data and len(data) > 2:
        ranking = sorted(data, key=lambda n: -data[n]["combined"].speedup)
        assert "PTB" in ranking[:2], ranking
