"""Memory-frugal BPTT gate: bit identity, FD oracle, saved-bytes, calibration.

Exercises :mod:`repro.nn.backprop` and :mod:`repro.nn.calibrate` and
writes ``BENCH_training.json``:

* **gradient correctness** — the ``stash`` and ``recompute`` saved-tensor
  policies must produce **bit-identical** fp64 gradients (they share the
  forward's batched GEMMs verbatim, so the contract is equality, not
  closeness), and the analytic gradients must agree with the shared
  central-difference oracle (:mod:`tests.gradcheck`) to
  ``MAX_FD_REL_ERR`` on spot-checked coordinates;
* **saved-tensor reduction** — across a sequence-length sweep the
  recompute policy's saved-tensor bytes must shrink relative to stash as
  ``T`` grows, reaching ``>= MIN_SAVED_RATIO`` at the longest swept
  length *both* analytically (the 7-vs-2 tensors/layer model) and as
  measured by ``tracemalloc``, and the recompute policy's measured
  high-water mark for a full step must not exceed stash's;
* **throughput penalty** — recomputation re-runs the input projections
  in the backward pass, so it cannot be free; the gate bounds the cost:
  min-of-``REPEATS`` step time (warmup first, GC paused — allocation
  noise is one-sided) must keep recompute at
  ``>= MIN_RECOMPUTE_THROUGHPUT`` of stash throughput;
* **calibration consumer** — fine-tuning on a drifted synthetic teacher
  must converge, re-fingerprint the weights, and demonstrably move the
  quantities the inference stack derives from gate statistics: the DRS
  skip fraction shifts and ``>= MIN_BREAKPOINTS_MOVED`` measured
  breakpoint placements move at a threshold frozen *before* training.

Runs in short mode (smaller workload, same gates) when
``REPRO_BENCH_SHORT=1`` — the CI training-gate job uses it::

    REPRO_BENCH_SHORT=1 PYTHONPATH=src python benchmarks/bench_training.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

# The shared FD oracle lives in tests/ (a package rooted at the repo, not
# on PYTHONPATH=src when this runs as a script).
_REPO_ROOT = pathlib.Path(__file__).parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from repro.bench.deflake import REPEATS, SHORT, WARMUP, gc_paused
from repro.bench.gates import GateSet
from repro.config import LSTMConfig
from repro.core.tuner import collect_relevance_samples
from repro.nn.backprop import (
    SAVED_TENSORS_PER_LAYER,
    TrainingConfig,
    analytic_saved_bytes,
    backward,
    measure_training_memory,
    network_parameters,
    training_forward,
    training_step,
)
from repro.nn.calibrate import (
    DriftSpec,
    drift_network,
    drift_report,
    fine_tune,
    synthetic_drift_batch,
)
from repro.nn.model_zoo import build_calibrated_network
from repro.nn.network import LSTMNetwork
from tests.gradcheck import DEFAULT_TOLERANCE, finite_difference_check

VOCAB = 120
NUM_CLASSES = 8

#: Gradient-check workload — small on purpose: the FD oracle pays two
#: forward passes per probed coordinate.
GRAD_HIDDEN = 24
GRAD_LAYERS = 2
GRAD_SEQ = 16
GRAD_BATCH = 3

#: Saved-bytes sweep (B, [T...]) and the timing workload.
SWEEP_BATCH = 4 if SHORT else 8
SWEEP_SEQ_LENS = (32, 128) if SHORT else (32, 64, 128, 256)
TIME_HIDDEN = 64
TIME_LAYERS = 2
TIME_SEQ = 32 if SHORT else 64
TIME_BATCH = 4 if SHORT else 8

#: Timing discipline (WARMUP/REPEATS/gc_paused) is the shared de-flake
#: harness in repro.bench.deflake: untimed warmup, then the min of
#: interleaved repeats with GC paused — allocation/GC noise only ever
#: adds time, so the min is the honest estimate.

#: Gate bounds.
MAX_FD_REL_ERR = DEFAULT_TOLERANCE
MIN_SAVED_RATIO = 3.0
MAX_PEAK_RATIO = 1.0
MIN_RECOMPUTE_THROUGHPUT = 0.6
MIN_BREAKPOINTS_MOVED = 1

#: Calibration workload.
CAL_STEPS = 4 if SHORT else 6
CAL_SEQUENCES = 4 if SHORT else 6
CAL_LR = 5e-2


def _network(hidden: int, layers: int, seq_len: int, seed: int = 0) -> LSTMNetwork:
    config = LSTMConfig(
        hidden_size=hidden, num_layers=layers, seq_length=seq_len, input_size=hidden
    )
    return LSTMNetwork(
        config, vocab_size=VOCAB, num_classes=NUM_CLASSES, seed=seed, head_pool=4
    )


def _batch(network: LSTMNetwork, batch: int, seed: int = 1):
    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, network.vocab_size, size=(batch, network.config.seq_length))
    labels = rng.integers(0, network.num_classes, size=batch)
    return tokens, labels


def check_gradients(gates: GateSet) -> dict:
    """Bit identity between policies + the finite-difference oracle."""
    network = _network(GRAD_HIDDEN, GRAD_LAYERS, GRAD_SEQ)
    tokens, labels = _batch(network, GRAD_BATCH)

    _, grads_stash = training_step(
        network, tokens, labels, TrainingConfig(policy="stash")
    )
    _, grads_recompute = training_step(
        network, tokens, labels, TrainingConfig(policy="recompute")
    )
    identical = grads_stash.allclose(grads_recompute, exact=True)
    gates.require_true(
        "grad_bit_identity",
        identical,
        detail="stash vs recompute gradients, exact fp64 equality",
    )

    # Truncated windows must stay bit-identical too (the reset hits both
    # policies at the same timesteps).
    trunc = TrainingConfig(policy="stash", truncation=5)
    _, t_stash = training_step(network, tokens, labels, trunc)
    _, t_recompute = training_step(
        network, tokens, labels, TrainingConfig(policy="recompute", truncation=5)
    )
    gates.require_true(
        "grad_bit_identity_truncated",
        t_stash.allclose(t_recompute, exact=True),
        detail="truncation=5 windows",
    )

    config = TrainingConfig(policy="recompute")

    def loss_fn() -> float:
        tape = training_forward(network, tokens, config)
        loss, _ = backward(tape, labels)
        return loss

    _, analytic = training_step(network, tokens, labels, config)
    fd_err = finite_difference_check(
        loss_fn,
        network_parameters(network),
        analytic.arrays(),
        rng=np.random.default_rng(7),
        coords_per_array=2 if SHORT else 4,
    )
    gates.require_at_most(
        "fd_max_rel_err",
        fd_err,
        MAX_FD_REL_ERR,
        detail="central differences, max(1,|a|,|f|) denominator",
    )
    return {
        "hidden": GRAD_HIDDEN,
        "layers": GRAD_LAYERS,
        "seq_len": GRAD_SEQ,
        "batch": GRAD_BATCH,
        "bit_identical": identical,
        "fd_max_rel_err": fd_err,
    }


def check_saved_bytes(gates: GateSet) -> dict:
    """Analytic + measured saved-tensor sweep over sequence length."""
    sweep: list[dict] = []
    for seq_len in SWEEP_SEQ_LENS:
        network = _network(TIME_HIDDEN, TIME_LAYERS, seq_len, seed=2)
        tokens, labels = _batch(network, SWEEP_BATCH, seed=seq_len)
        row: dict = {"seq_len": seq_len, "batch": SWEEP_BATCH}
        for policy in ("stash", "recompute"):
            measured = measure_training_memory(
                network, tokens, labels, TrainingConfig(policy=policy)
            )
            row[policy] = {
                "analytic_saved_bytes": analytic_saved_bytes(
                    network, SWEEP_BATCH, seq_len, policy
                ),
                "measured_saved_bytes": measured["measured_saved_bytes"],
                "measured_peak_bytes": measured["measured_peak_bytes"],
            }
        row["analytic_saved_ratio"] = (
            row["stash"]["analytic_saved_bytes"]
            / row["recompute"]["analytic_saved_bytes"]
        )
        row["measured_saved_ratio"] = (
            row["stash"]["measured_saved_bytes"]
            / row["recompute"]["measured_saved_bytes"]
        )
        row["measured_peak_ratio"] = (
            row["recompute"]["measured_peak_bytes"]
            / row["stash"]["measured_peak_bytes"]
        )
        sweep.append(row)

    longest = sweep[-1]
    gates.require_at_least(
        "analytic_saved_ratio",
        longest["analytic_saved_ratio"],
        MIN_SAVED_RATIO,
        detail=f"stash/recompute saved bytes at T={longest['seq_len']} (analytic)",
    )
    gates.require_at_least(
        "measured_saved_ratio",
        longest["measured_saved_ratio"],
        MIN_SAVED_RATIO,
        detail=f"stash/recompute saved bytes at T={longest['seq_len']} (tracemalloc)",
    )
    gates.require_at_most(
        "measured_peak_ratio",
        longest["measured_peak_ratio"],
        MAX_PEAK_RATIO,
        detail="recompute/stash full-step high-water mark",
    )
    return {
        "hidden": TIME_HIDDEN,
        "layers": TIME_LAYERS,
        "tensors_per_layer": dict(SAVED_TENSORS_PER_LAYER),
        "sweep": sweep,
    }


def check_throughput(gates: GateSet) -> dict:
    """Recompute's step-time penalty, min-of-REPEATS with GC paused."""
    network = _network(TIME_HIDDEN, TIME_LAYERS, TIME_SEQ, seed=3)
    tokens, labels = _batch(network, TIME_BATCH, seed=5)
    configs = {policy: TrainingConfig(policy=policy) for policy in ("stash", "recompute")}

    for config in configs.values():
        for _ in range(WARMUP):
            training_step(network, tokens, labels, config)

    best = {policy: float("inf") for policy in configs}
    with gc_paused():
        for _ in range(REPEATS):
            for policy, config in configs.items():
                start = time.perf_counter()
                training_step(network, tokens, labels, config)
                best[policy] = min(best[policy], time.perf_counter() - start)

    ratio = best["stash"] / best["recompute"]
    gates.require_at_least(
        "recompute_throughput_ratio",
        ratio,
        MIN_RECOMPUTE_THROUGHPUT,
        detail=f"min-of-{REPEATS} step time, stash_s/recompute_s",
    )
    return {
        "hidden": TIME_HIDDEN,
        "layers": TIME_LAYERS,
        "seq_len": TIME_SEQ,
        "batch": TIME_BATCH,
        "warmup": WARMUP,
        "repeats": REPEATS,
        "stash_step_s": best["stash"],
        "recompute_step_s": best["recompute"],
        "recompute_throughput_ratio": ratio,
    }


def check_calibration(gates: GateSet) -> dict:
    """The consumer loop: drift -> fine-tune -> gate statistics move."""
    config = LSTMConfig(hidden_size=24, num_layers=2, seq_length=20, input_size=16)
    network = build_calibrated_network(
        config=config, vocab_size=40, num_classes=6, seed=0
    )
    frozen = build_calibrated_network(
        config=config, vocab_size=40, num_classes=6, seed=0
    )
    teacher = drift_network(network, DriftSpec(magnitude=1.0))
    tokens, labels = synthetic_drift_batch(
        teacher, num_sequences=CAL_SEQUENCES, seed=11
    )
    result = fine_tune(network, tokens, labels, steps=CAL_STEPS, lr=CAL_LR)

    gates.require_true(
        "calibration_loss_decreased",
        result.losses[-1] < result.losses[0],
        detail=f"loss {result.losses[0]:.4f} -> {result.losses[-1]:.4f}",
    )
    gates.require_true(
        "calibration_fingerprint_changed",
        result.weights_changed,
        detail="fine_tune must re-fingerprint the network",
    )

    # Threshold frozen on the *pre-training* relevance distribution so any
    # breakpoint movement is attributable to the weights alone.
    pooled = np.sort(np.concatenate(collect_relevance_samples(frozen, tokens)))
    alpha_inter = float(pooled[int(0.3 * (len(pooled) - 1))])
    report = drift_report(
        frozen, network, tokens, alpha_inter=alpha_inter, alpha_intra=0.25
    )
    gates.require_true(
        "calibration_skip_fraction_shifted",
        report.skip_fraction_delta != 0.0,
        detail=f"DRS skip fraction delta {report.skip_fraction_delta:+.4f}",
    )
    gates.require_at_least(
        "calibration_breakpoints_moved",
        report.breakpoints_moved,
        MIN_BREAKPOINTS_MOVED,
        detail=f"alpha_inter={alpha_inter:.3g} (0.3-quantile, frozen weights)",
    )
    return {
        "steps": CAL_STEPS,
        "sequences": CAL_SEQUENCES,
        "lr": CAL_LR,
        "loss_first": result.losses[0],
        "loss_last": result.losses[-1],
        "fingerprint_before": result.fingerprint_before,
        "fingerprint_after": result.fingerprint_after,
        "alpha_inter": alpha_inter,
        "drift": report.as_dict(),
    }


def run() -> tuple[dict, GateSet]:
    gates = GateSet("training")
    gradients = check_gradients(gates)
    saved = check_saved_bytes(gates)
    throughput = check_throughput(gates)
    calibration = check_calibration(gates)
    return {
        "short_mode": SHORT,
        "bounds": {
            "max_fd_rel_err": MAX_FD_REL_ERR,
            "min_saved_ratio": MIN_SAVED_RATIO,
            "max_peak_ratio": MAX_PEAK_RATIO,
            "min_recompute_throughput": MIN_RECOMPUTE_THROUGHPUT,
            "min_breakpoints_moved": MIN_BREAKPOINTS_MOVED,
        },
        "gradients": gradients,
        "saved_bytes": saved,
        "throughput": throughput,
        "calibration": calibration,
        "gates": gates.as_dict(),
        "failures": gates.failures,
        "passed": gates.passed,
    }, gates


def main() -> int:
    report, gates = run()
    out_path = pathlib.Path(__file__).parent.parent / "BENCH_training.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return gates.exit_code()


if __name__ == "__main__":
    sys.exit(main())
