"""Serving-runtime scaling gate: fleet throughput vs worker count.

Serves the executor-benchmark COMBINED workload through
:class:`repro.runtime.pool.InferenceRuntime` at 1, 2, and 4 workers
(plus a queue-depth sweep at the widest fleet), writes
``BENCH_runtime.json``, and exits non-zero unless

* 4 workers deliver >= 1.7x the 1-worker throughput, and
* every configuration's outputs are bit-identical to an in-process
  :class:`~repro.core.executor.LSTMExecutor` run per dispatch group (the
  runtime's numerics contract) *and* to each other across worker counts
  (grouping never depends on parallelism).

Scaling model: each worker sleeps a fixed *dwell* per served sequence,
modeling the mobile-GPU device occupancy of the simulator plane (the
host-side control loop is idle while the device runs — exactly what a
multi-device fleet overlaps). This keeps the gate meaningful on
single-core CI runners, where raw host compute cannot parallelize; the
dwell, the host CPU count, and the model are disclosed in the JSON so a
reader can judge the measurement.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import numpy as np

from repro.bench.gates import GateSet
from repro.config import LSTMConfig
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.nn.network import LSTMNetwork
from repro.runtime import InferenceRuntime, leaked_segments

#: Throughput at WORKER_COUNTS[-1] must be at least this multiple of the
#: single-worker throughput.
MIN_SCALING = 1.7

WORKER_COUNTS = (1, 2, 4)
QUEUE_DEPTHS = (1, 4, 16)
NUM_SEQUENCES = 64
MAX_BATCH = 8
#: Modeled per-sequence device dwell (s); see the module docstring.
DWELL_S = 0.025


def build_case() -> tuple[LSTMNetwork, np.ndarray, ExecutionConfig]:
    """The 64-sequence COMBINED acceptance workload (matches the executor bench)."""
    config = LSTMConfig(hidden_size=64, num_layers=2, seq_length=64, input_size=64)
    network = LSTMNetwork(config, vocab_size=200, num_classes=8, seed=11)
    rng = np.random.default_rng(23)
    tokens = rng.integers(0, 200, size=(NUM_SEQUENCES, config.seq_length))
    exec_config = ExecutionConfig(
        mode=ExecutionMode.COMBINED, alpha_inter=1e12, alpha_intra=0.05, mts=5
    )
    return network, tokens, exec_config


def serve_once(
    network: LSTMNetwork,
    tokens: np.ndarray,
    exec_config: ExecutionConfig,
    workers: int,
    queue_depth: int,
) -> tuple[dict, np.ndarray]:
    """One fleet run; startup/teardown excluded from the timed window."""
    runtime = InferenceRuntime(
        network,
        exec_config,
        workers=workers,
        max_batch=MAX_BATCH,
        queue_depth=queue_depth,
        dwell_s=DWELL_S,
    )
    with runtime:
        start = time.perf_counter()
        fleet = runtime.run_batch(tokens)
        wall_s = time.perf_counter() - start
    stats = {
        "workers": workers,
        "queue_depth": queue_depth,
        "shards": fleet.num_shards,
        "plan_groups": len(fleet.groups),
        "wall_s": wall_s,
        "throughput_seq_s": NUM_SEQUENCES / wall_s,
    }
    return stats, fleet.logits


def expected_logits(
    network: LSTMNetwork, tokens: np.ndarray, exec_config: ExecutionConfig
) -> np.ndarray:
    """Per-dispatch-group executor logits, reassembled in request order."""
    runtime = InferenceRuntime(network, exec_config, workers=0, max_batch=MAX_BATCH)
    executor = LSTMExecutor(network, exec_config)
    groups = runtime.scheduler.plan_dispatch(tokens)
    first = executor.run_batch(groups[0].tokens).logits
    logits = np.empty((tokens.shape[0],) + first.shape[1:], dtype=first.dtype)
    for number, group in enumerate(groups):
        out = first if number == 0 else executor.run_batch(group.tokens).logits
        for row, index in enumerate(group.indices):
            logits[index] = out[row]
    return logits


def run() -> tuple[dict, GateSet]:
    network, tokens, exec_config = build_case()
    reference = expected_logits(network, tokens, exec_config)
    gates = GateSet("runtime")

    scaling: list[dict] = []
    for workers in WORKER_COUNTS:
        stats, logits = serve_once(network, tokens, exec_config, workers, queue_depth=16)
        stats["bit_identical"] = bool(np.array_equal(logits, reference))
        gates.require_true(
            f"workers={workers}/bit-identical",
            stats["bit_identical"],
            "fleet logits differ from the executor",
        )
        scaling.append(stats)
        print(
            f"workers={workers}  depth=16  {stats['wall_s'] * 1e3:8.1f} ms   "
            f"{stats['throughput_seq_s']:7.1f} seq/s   "
            f"bit-identical={stats['bit_identical']}"
        )

    depth_sweep: list[dict] = []
    for depth in QUEUE_DEPTHS:
        stats, logits = serve_once(
            network, tokens, exec_config, WORKER_COUNTS[-1], queue_depth=depth
        )
        stats["bit_identical"] = bool(np.array_equal(logits, reference))
        gates.require_true(
            f"depth={depth}/bit-identical",
            stats["bit_identical"],
            "fleet logits differ from the executor",
        )
        depth_sweep.append(stats)
        print(
            f"workers={WORKER_COUNTS[-1]}  depth={depth:2d}  "
            f"{stats['wall_s'] * 1e3:8.1f} ms   "
            f"{stats['throughput_seq_s']:7.1f} seq/s   "
            f"bit-identical={stats['bit_identical']}"
        )

    speedup = scaling[-1]["throughput_seq_s"] / scaling[0]["throughput_seq_s"]
    gates.require_at_least(
        f"scaling-{WORKER_COUNTS[-1]}w-vs-1w",
        speedup,
        MIN_SCALING,
        "fleet throughput scaling",
    )
    print(
        f"scaling {WORKER_COUNTS[-1]} vs 1 worker: {speedup:.2f}x "
        f"(gate {MIN_SCALING:.1f}x)"
    )

    leaks = leaked_segments()
    gates.require_true(
        "no-leaked-segments",
        not leaks,
        f"leaked shared-memory segments: {', '.join(leaks)}" if leaks else "",
    )

    return {
        "workload": {
            "mode": exec_config.mode.value,
            "num_sequences": NUM_SEQUENCES,
            "hidden_size": 64,
            "num_layers": 2,
            "seq_length": 64,
            "max_batch": MAX_BATCH,
        },
        "scaling_model": {
            "kind": "virtual-device dwell",
            "dwell_s_per_sequence": DWELL_S,
            "host_cpu_count": os.cpu_count(),
            "note": (
                "each worker sleeps dwell_s per served sequence, modeling the "
                "simulated mobile GPU's device occupancy; throughput scaling "
                "measures how well the fleet overlaps device dwell, "
                "independent of host core count"
            ),
        },
        "scaling": scaling,
        "queue_depth_sweep": depth_sweep,
        "speedup_4w_vs_1w": speedup,
        "min_scaling": MIN_SCALING,
        "bit_identical": all(s["bit_identical"] for s in scaling + depth_sweep),
        "leaked_segments": leaks,
        "gates": gates.as_dict(),
        "failures": gates.failures,
        "passed": gates.passed,
    }, gates


def main() -> int:
    report, gates = run()
    out_path = pathlib.Path(__file__).parent.parent / "BENCH_runtime.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return gates.exit_code()


if __name__ == "__main__":
    sys.exit(main())
