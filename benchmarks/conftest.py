"""Shared benchmark session state.

All benchmark files share one :class:`repro.bench.ExperimentContext` so each
application is built and swept exactly once per session. Rendered reports
are collected and printed in the terminal summary (pytest captures stdout
inside tests), and also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.harness import ExperimentContext

_REPORTS: list[tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_CTX: ExperimentContext | None = None


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    global _CTX
    if _CTX is None:
        _CTX = ExperimentContext()
    return _CTX


@pytest.fixture(scope="session")
def record_report():
    """Collect a rendered report for the terminal summary and results dir."""

    def _record(name: str, text: str) -> None:
        _REPORTS.append((name, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS and _CTX is None:
        return
    terminalreporter.section("paper reproduction reports")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"===== {name} =====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    if _CTX is not None:
        terminalreporter.write_line("")
        terminalreporter.write_line("===== plan cache =====")
        for line in _CTX.cache_report().splitlines():
            terminalreporter.write_line(line)
