"""Table I — the simulated platform specification."""

from repro.bench.harness import table1_platform


def test_table1_platform(benchmark, ctx, record_report):
    report = benchmark.pedantic(table1_platform, args=(ctx,), rounds=1, iterations=1)
    record_report("table1_platform", report)
    assert "Tegra X1" in report
    assert "25.6" in report
