"""Fig. 6 — off-chip vs on-chip bandwidth utilization during Sgemv.

Paper shape: the off-chip bandwidth is almost fully utilized while the
on-chip (shared-memory) bandwidth is lightly consumed.
"""

from repro.bench.harness import fig06_bandwidth_utilization


def test_fig06_bandwidth_utilization(benchmark, ctx, record_report):
    data, report = benchmark.pedantic(
        fig06_bandwidth_utilization, args=(ctx,), rounds=1, iterations=1
    )
    record_report("fig06_bandwidth", report)
    for name, util in data.items():
        assert util["off_chip"] > 0.9, name
        assert util["on_chip"] < 0.5, name
