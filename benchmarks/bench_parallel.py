"""In-process parallel-execution gate: thread-pool dispatch over shards.

Runs the executor's threaded dispatch path (``ExecutionConfig.threads``)
through three gate families, writes ``BENCH_parallel.json``, and exits
non-zero unless

* fp64 logits at ``threads`` in {1, 2, 4} are **bit-identical** to the
  serial executor in every execution mode (row sharding never changes
  the numerics — the per-row GEMV lift pins each row's bits regardless
  of batch grouping);
* 4 threads deliver >= 2.2x the single-thread in-process throughput on
  the COMBINED workload under the virtual-device dwell model; and
* a concurrent cold start over a shared plan cache performs **zero
  duplicate compiles**: with every batch row identical, the four shard
  threads race on the same relevance/plan keys and single-flight must
  collapse the races to exactly ``num_layers`` misses each, plus a
  direct same-key hammer on :class:`~repro.core.program.ProgramCache`
  that must build exactly once.

Scaling model: the dwell knob (``LSTMExecutor(dwell_s=...)``) sleeps a
fixed dwell per sequence inside each work unit, modeling the simulated
mobile GPU's device occupancy (the host-side control loop is idle while
the device runs — exactly what threaded dispatch overlaps, because the
sleep releases the GIL like the BLAS calls do). This keeps the scaling
gate meaningful on single-core CI runners, where raw host compute
cannot parallelize; the dwell, the host CPU count, and the model are
disclosed in the JSON so a reader can judge the measurement. The
no-dwell walls are reported alongside, un-gated.

Honors ``REPRO_BENCH_SHORT=1`` — the CI parallel-gate job uses it::

    REPRO_BENCH_SHORT=1 PYTHONPATH=src python benchmarks/bench_parallel.py
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import threading
import time

import numpy as np

from repro.bench.deflake import REPEATS, SHORT, gc_paused, pick
from repro.bench.gates import GateSet
from repro.config import LSTMConfig
from repro.core.executor import ExecutionConfig, ExecutionMode, LSTMExecutor
from repro.core.plan import PlanCache
from repro.core.program import ProgramCache
from repro.nn.network import LSTMNetwork

#: Throughput at THREAD_COUNTS[-1] must be at least this multiple of the
#: single-thread in-process throughput on the dwell workload.
MIN_SCALING = 2.2

THREAD_COUNTS = (1, 2, 4)
MODES = (
    ExecutionMode.BASELINE,
    ExecutionMode.INTER,
    ExecutionMode.INTRA,
    ExecutionMode.COMBINED,
    ExecutionMode.ZERO_PRUNE,
)

NUM_SEQUENCES = pick(32, 16)
SEQ_LEN = 32
HIDDEN = 64
LAYERS = 2
#: Modeled per-sequence device dwell (s); see the module docstring.
DWELL_S = pick(0.02, 0.01)
#: Same-key hammer width for the program-cache single-flight gate.
HAMMER_THREADS = 8


def build_case() -> tuple[LSTMNetwork, np.ndarray]:
    """A mid-size workload sharing the executor-bench geometry."""
    config = LSTMConfig(
        hidden_size=HIDDEN, num_layers=LAYERS, seq_length=SEQ_LEN,
        input_size=HIDDEN,
    )
    network = LSTMNetwork(config, vocab_size=200, num_classes=8, seed=11)
    rng = np.random.default_rng(23)
    tokens = rng.integers(0, 200, size=(NUM_SEQUENCES, SEQ_LEN))
    return network, tokens


def mode_config(mode: ExecutionMode, threads: int = 1) -> ExecutionConfig:
    if mode is ExecutionMode.COMBINED:
        # A threshold above every relevance value divides the layer fully:
        # one plan signature, one schedule-key group — parallelism has to
        # come from row sharding *within* the group, the hard case.
        return ExecutionConfig(
            mode=mode, alpha_inter=1e12, alpha_intra=0.05, mts=5,
            threads=threads,
        )
    if mode is ExecutionMode.INTER:
        return ExecutionConfig(mode=mode, alpha_inter=1e12, mts=5, threads=threads)
    if mode is ExecutionMode.INTRA:
        return ExecutionConfig(mode=mode, alpha_intra=0.05, threads=threads)
    return ExecutionConfig(mode=mode, threads=threads)


def bit_identity_run(network, tokens, gates: GateSet) -> dict:
    """fp64 bit-identity of every mode at threads in {1, 2, 4}."""
    results = {}
    for mode in MODES:
        serial = LSTMExecutor(network, mode_config(mode)).run_batch(tokens)
        per_mode = {}
        for threads in THREAD_COUNTS:
            out = LSTMExecutor(network, mode_config(mode, threads)).run_batch(tokens)
            identical = bool(np.array_equal(out.logits, serial.logits))
            gates.require_true(
                f"bit-identical/{mode.value}/threads={threads}",
                identical,
                "threaded logits differ from serial",
            )
            per_mode[str(threads)] = identical
        results[mode.value] = per_mode
        print(f"bit-identity {mode.value:10s}: " + "  ".join(
            f"t={t} {per_mode[str(t)]}" for t in THREAD_COUNTS
        ))
    return results


def _best_wall_s(executor: LSTMExecutor, tokens: np.ndarray) -> tuple[float, dict]:
    """Min-of-REPEATS warm wall plus the last run's dispatch timings."""
    result = executor.run_batch(tokens)  # warm caches / plan / programs
    best = float("inf")
    with gc_paused():
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = executor.run_batch(tokens)
            best = min(best, time.perf_counter() - start)
    return best, dict(result.timings)


def scaling_run(network, tokens, gates: GateSet) -> dict:
    """COMBINED throughput vs threads under the dwell model (+ real walls)."""
    scaling: list[dict] = []
    for threads in THREAD_COUNTS:
        executor = LSTMExecutor(
            network, mode_config(ExecutionMode.COMBINED, threads), dwell_s=DWELL_S
        )
        wall_s, timings = _best_wall_s(executor, tokens)
        real = LSTMExecutor(network, mode_config(ExecutionMode.COMBINED, threads))
        real_wall_s, _ = _best_wall_s(real, tokens)
        stats = {
            "threads": threads,
            "wall_s": wall_s,
            "throughput_seq_s": NUM_SEQUENCES / wall_s,
            "no_dwell_wall_s": real_wall_s,
            "dispatch_wall_s": timings.get("dispatch_wall_s", 0.0),
            "queue_wait_s": timings.get("queue_wait_s", 0.0),
            "thread_busy_s": timings.get("thread_busy_s", 0.0),
        }
        scaling.append(stats)
        print(
            f"threads={threads}  {wall_s * 1e3:8.1f} ms   "
            f"{stats['throughput_seq_s']:7.1f} seq/s   "
            f"(no-dwell {real_wall_s * 1e3:.1f} ms, "
            f"queue-wait {stats['queue_wait_s'] * 1e3:.2f} ms)"
        )
    speedup = scaling[-1]["throughput_seq_s"] / scaling[0]["throughput_seq_s"]
    gates.require_at_least(
        f"scaling-{THREAD_COUNTS[-1]}t-vs-1t",
        speedup,
        MIN_SCALING,
        "in-process threaded throughput scaling",
    )
    print(
        f"scaling {THREAD_COUNTS[-1]} vs 1 thread: {speedup:.2f}x "
        f"(gate {MIN_SCALING:.1f}x)"
    )
    return {
        "per_threads": scaling,
        "speedup_4t_vs_1t": speedup,
        "min_scaling": MIN_SCALING,
    }


def cold_start_run(network, gates: GateSet) -> dict:
    """Zero duplicate compiles under a concurrent cold start.

    Every batch row is the same sequence, so all four shard threads race
    on identical relevance/plan keys against a fresh shared cache; the
    single-flight protocol must collapse each race to one build (misses
    count distinct completed builds, so misses == num_layers exactly).
    """
    rng = np.random.default_rng(7)
    same = np.repeat(rng.integers(0, 200, size=(1, SEQ_LEN)), NUM_SEQUENCES, axis=0)
    plan_cache = PlanCache()
    executor = LSTMExecutor(
        network,
        mode_config(ExecutionMode.COMBINED, THREAD_COUNTS[-1]),
        plan_cache=plan_cache,
        program_cache=ProgramCache(),
    )
    executor.run_batch(same)
    stats = plan_cache.stats.as_dict()
    gates.require_true(
        "cold-start/relevance-misses-exact",
        stats["relevance_misses"] == LAYERS,
        f"expected {LAYERS} relevance builds, saw {stats['relevance_misses']}",
    )
    gates.require_true(
        "cold-start/plan-misses-exact",
        stats["plan_misses"] == LAYERS,
        f"expected {LAYERS} plan builds, saw {stats['plan_misses']}",
    )
    print(
        f"cold-start misses: relevance {stats['relevance_misses']} "
        f"plan {stats['plan_misses']} (layers={LAYERS})"
    )

    # Direct same-key hammer: HAMMER_THREADS concurrent get()s with a
    # deliberately slow build must produce exactly one build.
    cache = ProgramCache()
    builds = []
    barrier = threading.Barrier(HAMMER_THREADS)

    def build():
        builds.append(threading.get_ident())
        time.sleep(0.02)
        return object()

    seen: list[object] = [None] * HAMMER_THREADS

    def hammer(slot: int) -> None:
        barrier.wait()
        seen[slot] = cache.get(("hammer",), build)

    threads = [
        threading.Thread(target=hammer, args=(slot,))
        for slot in range(HAMMER_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    hammer_stats = cache.stats.as_dict()
    gates.require_true(
        "cold-start/program-single-flight",
        len(builds) == 1 and len(set(id(v) for v in seen)) == 1,
        f"{len(builds)} builds across {HAMMER_THREADS} concurrent get()s",
    )
    gates.require_true(
        "cold-start/program-counters-exact",
        hammer_stats["program_misses"] == 1
        and hammer_stats["program_hits"] == HAMMER_THREADS - 1,
        f"misses {hammer_stats['program_misses']} "
        f"hits {hammer_stats['program_hits']}",
    )
    print(
        f"program hammer: {len(builds)} build(s), "
        f"misses {hammer_stats['program_misses']}, "
        f"hits {hammer_stats['program_hits']}"
    )
    return {
        "plan_cache": stats,
        "expected_builds_per_counter": LAYERS,
        "program_hammer": {
            "threads": HAMMER_THREADS,
            "builds": len(builds),
            **hammer_stats,
        },
    }


def run() -> tuple[dict, GateSet]:
    network, tokens = build_case()
    gates = GateSet("parallel")
    bit_identity = bit_identity_run(network, tokens, gates)
    scaling = scaling_run(network, tokens, gates)
    cold_start = cold_start_run(network, gates)
    return {
        "workload": {
            "num_sequences": NUM_SEQUENCES,
            "hidden_size": HIDDEN,
            "num_layers": LAYERS,
            "seq_length": SEQ_LEN,
            "modes": [m.value for m in MODES],
            "thread_counts": list(THREAD_COUNTS),
            "short_mode": SHORT,
            "repeats": REPEATS,
        },
        "scaling_model": {
            "kind": "virtual-device dwell",
            "dwell_s_per_sequence": DWELL_S,
            "host_cpu_count": os.cpu_count(),
            "note": (
                "each work unit sleeps dwell_s per sequence it carries, "
                "modeling the simulated mobile GPU's device occupancy; "
                "the sleep releases the GIL exactly like the BLAS kernels "
                "do, so throughput scaling measures how well threaded "
                "dispatch overlaps device dwell, independent of host core "
                "count; no_dwell_wall_s reports the raw host walls un-gated"
            ),
        },
        "bit_identity": bit_identity,
        "scaling": scaling,
        "cold_start": cold_start,
        "gates": gates.as_dict(),
        "failures": gates.failures,
        "passed": gates.passed,
    }, gates


def main() -> int:
    report, gates = run()
    out_path = pathlib.Path(__file__).parent.parent / "BENCH_parallel.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")
    return gates.exit_code()


if __name__ == "__main__":
    sys.exit(main())
